// Tests of the QBSS model layer: job quintuples, policies, the reveal
// gate's information enforcement, expansions, and the Lemma 3.1 load
// guarantee.
#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/xoshiro.hpp"
#include "qbss/policy.hpp"
#include "qbss/transform.hpp"

namespace qbss::core {
namespace {

TEST(QJob, BestLoadIsMinOfOptions) {
  const QJob cheap_query{0.0, 1.0, 0.2, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(cheap_query.best_load(), 0.7);
  EXPECT_TRUE(cheap_query.optimum_queries());

  const QJob useless_query{0.0, 1.0, 1.0, 2.0, 1.5};
  EXPECT_DOUBLE_EQ(useless_query.best_load(), 2.0);
  EXPECT_FALSE(useless_query.optimum_queries());
}

TEST(QJob, ValidityEnforcesModelRanges) {
  EXPECT_TRUE((QJob{0.0, 1.0, 0.5, 1.0, 0.3}).valid());
  EXPECT_FALSE((QJob{0.0, 1.0, 0.0, 1.0, 0.3}).valid());   // c = 0
  EXPECT_FALSE((QJob{0.0, 1.0, 1.5, 1.0, 0.3}).valid());   // c > w
  EXPECT_FALSE((QJob{0.0, 1.0, 0.5, 1.0, 1.2}).valid());   // w* > w
  EXPECT_FALSE((QJob{1.0, 1.0, 0.5, 1.0, 0.3}).valid());   // empty window
  EXPECT_FALSE((QJob{-1.0, 1.0, 0.5, 1.0, 0.3}).valid());  // r < 0
}

TEST(QueryPolicy, GoldenRuleThreshold) {
  const QueryPolicy golden = QueryPolicy::golden();
  // c <= w/phi: query. c slightly above: skip.
  EXPECT_TRUE(golden.should_query({0.0, 1.0, 1.0 / kPhi - 1e-9, 1.0, 0.5}));
  EXPECT_FALSE(golden.should_query({0.0, 1.0, 1.0 / kPhi + 1e-9, 1.0, 0.5}));
}

TEST(QueryPolicy, AlwaysAndNever) {
  const QJob j{0.0, 1.0, 1.0, 1.0, 0.0};  // c = w (max allowed)
  EXPECT_TRUE(QueryPolicy::always().should_query(j));
  EXPECT_FALSE(QueryPolicy::never().should_query(j));
}

TEST(SplitPolicy, HalfIsWindowMidpoint) {
  const QJob j{2.0, 6.0, 0.5, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(SplitPolicy::half().split_point(j), 4.0);
  EXPECT_DOUBLE_EQ(SplitPolicy::fraction(0.25).split_point(j), 3.0);
}

// Lemma 3.1: with the golden rule, the load the algorithm executes is at
// most phi times the clairvoyant load. Property-tested over random jobs.
TEST(GoldenRule, Lemma31LoadGuarantee) {
  Xoshiro256 rng(71);
  const QueryPolicy golden = QueryPolicy::golden();
  for (int trial = 0; trial < 2000; ++trial) {
    const Work w = rng.uniform(0.1, 10.0);
    const Work c = rng.uniform(1e-6, w);
    const Work wstar = rng.uniform(0.0, w);
    const QJob j{0.0, 1.0, c, w, wstar};
    const Work executed =
        golden.should_query(j) ? c + wstar : w;
    EXPECT_LE(executed, kPhi * j.best_load() + 1e-9)
        << "c=" << c << " w=" << w << " w*=" << wstar;
  }
}

// The golden threshold is the best fixed threshold for the Lemma 3.1
// guarantee: thresholds away from 1/phi admit jobs violating phi.
TEST(GoldenRule, OtherThresholdsViolatePhi) {
  // Threshold too high (queries too eagerly): job with c just below the
  // threshold and w* = w executes c + w > phi * w when c/w > phi - 1.
  {
    const QueryPolicy eager = QueryPolicy::threshold(0.9);
    const QJob j{0.0, 1.0, 0.89, 1.0, 1.0};
    ASSERT_TRUE(eager.should_query(j));
    EXPECT_GT(j.query_cost + j.exact_load, kPhi * j.best_load());
  }
  // Threshold too low (queries too lazily): job with c just above the
  // threshold and w* = 0 executes w > phi * c when w/c > phi.
  {
    const QueryPolicy lazy = QueryPolicy::threshold(0.3);
    const QJob j{0.0, 1.0, 0.31, 1.0, 0.0};
    ASSERT_FALSE(lazy.should_query(j));
    EXPECT_GT(j.upper_bound, kPhi * j.best_load());
  }
}

// ----- RevealGate ------------------------------------------------------

TEST(RevealGate, AllowsAccessAfterReveal) {
  QInstance inst;
  inst.add(0.0, 1.0, 0.5, 1.0, 0.25);
  RevealGate gate(inst);
  EXPECT_FALSE(gate.is_revealed(0));
  gate.reveal(0);
  EXPECT_TRUE(gate.is_revealed(0));
  EXPECT_DOUBLE_EQ(gate.exact_load(0), 0.25);
}

TEST(RevealGateDeathTest, AbortsOnUnqueriedAccess) {
  QInstance inst;
  inst.add(0.0, 1.0, 0.5, 1.0, 0.25);
  const RevealGate gate(inst);
  EXPECT_DEATH((void)gate.exact_load(0), "precondition");
}

// ----- Expansions ------------------------------------------------------

TEST(Expand, AlwaysQueryProducesTwoPartsPerJob) {
  QInstance inst;
  inst.add(0.0, 2.0, 0.5, 1.0, 0.25);
  inst.add(1.0, 3.0, 1.0, 1.0, 0.0);
  const Expansion e =
      expand(inst, QueryPolicy::always(), SplitPolicy::half());
  ASSERT_EQ(e.classical.size(), 4u);
  EXPECT_TRUE(e.queried[0]);
  EXPECT_TRUE(e.queried[1]);
  // Job 0: query (0, 1, 0.5], exact (1, 2, 0.25].
  EXPECT_EQ(e.classical.job(0).deadline, 1.0);
  EXPECT_EQ(e.classical.job(0).work, 0.5);
  EXPECT_EQ(e.classical.job(1).release, 1.0);
  EXPECT_EQ(e.classical.job(1).work, 0.25);
  // Job 1: split point at 2.
  EXPECT_EQ(e.classical.job(2).deadline, 2.0);
  EXPECT_EQ(e.classical.job(3).release, 2.0);
}

TEST(Expand, NeverQueryKeepsUpperBounds) {
  QInstance inst;
  inst.add(0.0, 2.0, 0.5, 1.0, 0.0);
  const Expansion e = expand(inst, QueryPolicy::never(), SplitPolicy::half());
  ASSERT_EQ(e.classical.size(), 1u);
  EXPECT_FALSE(e.queried[0]);
  EXPECT_EQ(e.classical.job(0).work, 1.0);
  EXPECT_EQ(e.parts[0].kind, PartKind::kFull);
}

TEST(Expand, GoldenSplitsOnlyCheapQueries) {
  QInstance inst;
  inst.add(0.0, 2.0, 0.1, 1.0, 0.5);  // cheap query -> queried
  inst.add(0.0, 2.0, 0.9, 1.0, 0.5);  // expensive -> skipped
  const Expansion e =
      expand(inst, QueryPolicy::golden(), SplitPolicy::half());
  EXPECT_TRUE(e.queried[0]);
  EXPECT_FALSE(e.queried[1]);
  ASSERT_EQ(e.classical.size(), 3u);
}

TEST(Expand, PartsOfMapsBackToSource) {
  QInstance inst;
  inst.add(0.0, 2.0, 0.1, 1.0, 0.5);
  inst.add(0.0, 2.0, 0.9, 1.0, 0.5);
  const Expansion e =
      expand(inst, QueryPolicy::golden(), SplitPolicy::half());
  EXPECT_EQ(e.parts_of(0).size(), 2u);
  EXPECT_EQ(e.parts_of(1).size(), 1u);
  for (const auto id : e.parts_of(0)) {
    EXPECT_EQ(e.parts[static_cast<std::size_t>(id)].source, 0);
  }
}

TEST(ClairvoyantInstance, UsesBestLoads) {
  QInstance inst;
  inst.add(0.0, 2.0, 0.2, 2.0, 0.5);  // p* = 0.7
  inst.add(0.0, 2.0, 1.5, 2.0, 1.0);  // p* = 2.0
  const scheduling::Instance c = clairvoyant_instance(inst);
  EXPECT_DOUBLE_EQ(c.job(0).work, 0.7);
  EXPECT_DOUBLE_EQ(c.job(1).work, 2.0);
}

TEST(QInstance, CommonFlags) {
  QInstance common;
  common.add(0.0, 4.0, 0.5, 1.0, 0.5);
  common.add(0.0, 4.0, 0.5, 1.0, 0.5);
  EXPECT_TRUE(common.common_release());
  EXPECT_TRUE(common.common_deadline());

  QInstance staggered;
  staggered.add(0.0, 4.0, 0.5, 1.0, 0.5);
  staggered.add(1.0, 4.0, 0.5, 1.0, 0.5);
  EXPECT_FALSE(staggered.common_release());
}

}  // namespace
}  // namespace qbss::core
