// Tests for the randomized query policy: validity, determinism, the
// rho = 0 / 1 degenerations, and agreement with the Lemma 4.4 analysis
// on the single-job game instance.
#include "qbss/randomized.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ratio_harness.hpp"
#include "common/constants.hpp"
#include "gen/random_instances.hpp"
#include "qbss/adversary.hpp"
#include "qbss/avrq.hpp"
#include "qbss/clairvoyant.hpp"
#include "qbss/generic.hpp"
#include "qbss/oracle.hpp"

namespace qbss::core {
namespace {

TEST(Randomized, AlwaysValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const QInstance inst = gen::random_online(10, 8.0, 0.5, 4.0, seed);
    for (const double rho : {0.0, 0.3, 0.7, 1.0}) {
      const QbssRun run = avrq_randomized(inst, rho, seed);
      EXPECT_TRUE(validate_run(inst, run).feasible)
          << "seed " << seed << " rho " << rho;
    }
  }
}

TEST(Randomized, DeterministicGivenSeed) {
  const QInstance inst = gen::random_online(10, 8.0, 0.5, 4.0, 3);
  const QbssRun a = avrq_randomized(inst, 0.5, 77);
  const QbssRun b = avrq_randomized(inst, 0.5, 77);
  EXPECT_EQ(a.expansion.queried, b.expansion.queried);
  EXPECT_EQ(a.energy(3.0), b.energy(3.0));
}

TEST(Randomized, RhoZeroNeverQueries) {
  const QInstance inst = gen::random_online(10, 8.0, 0.5, 4.0, 5);
  const QbssRun run = avrq_randomized(inst, 0.0, 1);
  for (const bool q : run.expansion.queried) EXPECT_FALSE(q);
}

TEST(Randomized, RhoOneMatchesAvrq) {
  const QInstance inst = gen::random_online(10, 8.0, 0.5, 4.0, 5);
  const QbssRun a = avrq_randomized(inst, 1.0, 1);
  const QbssRun b = avrq(inst);
  for (const bool q : a.expansion.queried) EXPECT_TRUE(q);
  EXPECT_NEAR(a.energy(3.0), b.energy(3.0), 1e-12);
}

TEST(Randomized, QueryFrequencyTracksRho) {
  const QInstance inst = gen::random_online(50, 20.0, 0.5, 4.0, 6);
  int queried = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const QbssRun run =
        avrq_randomized(inst, 0.3, static_cast<std::uint64_t>(t));
    for (const bool q : run.expansion.queried) queried += q ? 1 : 0;
  }
  const double frequency = static_cast<double>(queried) / (50.0 * trials);
  EXPECT_NEAR(frequency, 0.3, 0.05);
}

// On the Lemma 4.4 speed-game instance (single job, c = w/2, oracle
// split replaced by the midpoint — which IS the oracle split when
// w* = w), the expected max speed interpolates between the pure
// strategies exactly as the lemma's algebra says.
TEST(Randomized, MatchesLemma44AlgebraOnGameInstance) {
  // Single job (0, 1, c=0.5, w=1, w*=1): midpoint split = oracle split
  // (c + w* split at c/(c+w*) = 1/3 differs, but the *speed* with the
  // half split is max(2c, 2w*) = 2; compare against the closed form).
  QInstance inst;
  inst.add(0.0, 1.0, 0.5, 1.0, 1.0);
  const double alpha = 2.0;
  // Querying runs c in (0, 1/2] at speed 1 and w* in (1/2, 1] at speed 2.
  const QbssRun query = avrq_randomized(inst, 1.0, 1);
  EXPECT_NEAR(query.max_speed(), 2.0, 1e-12);
  // Not querying runs w at speed 1.
  const QbssRun skip = avrq_randomized(inst, 0.0, 1);
  EXPECT_NEAR(skip.max_speed(), 1.0, 1e-12);

  // Expected max speed at rho estimated over many trials ~ rho*2+(1-rho).
  const RandomizedEstimate est = estimate_randomized(inst, 0.4, alpha, 400, 9);
  EXPECT_NEAR(est.mean_max_speed, 0.4 * 2.0 + 0.6 * 1.0, 0.08);
}

TEST(Randomized, EstimateAveragesEnergy) {
  QInstance inst;
  inst.add(0.0, 1.0, 0.5, 1.0, 0.0);
  const double alpha = 2.0;
  // Query: c at speed 1 in first half, nothing after -> energy 0.5.
  // Skip: w = 1 at speed 1 -> energy 1.
  const RandomizedEstimate est =
      estimate_randomized(inst, 0.5, alpha, 2000, 11);
  EXPECT_NEAR(est.mean_energy, 0.5 * 0.5 + 0.5 * 1.0, 0.03);
}

// The executable randomized policy can beat both deterministic pure
// strategies on the adversary's own equalizing instance — the point of
// Lemma 4.4.
TEST(Randomized, MixingBeatsPureStrategiesOnEqualizer) {
  // c = w/phi, adversary sets w* = 0 (bad for skip) or w (bad for query):
  // evaluate expected energy on BOTH and take the max (adversary's best
  // response); mixing at 1/2 is below both pure maxima.
  const double alpha = 2.0;
  const double c = 1.0 / kPhi;
  auto worst_expected = [&](double rho) {
    double worst = 0.0;
    for (const double wstar : {0.0, 1.0}) {
      QInstance inst;
      inst.add(0.0, 1.0, c, 1.0, wstar);
      // Closed-form expectation using the oracle split (Lemma 4.4's
      // setting): query -> flat speed c + w*, skip -> flat speed w.
      QJob job = inst.job(0);
      const double e_query = run_with_oracle_split(job, alpha).energy;
      const double e_skip = run_without_query(job, alpha).energy;
      const double opt = single_job_optimum(job, alpha).energy;
      worst = std::max(worst,
                       (rho * e_query + (1.0 - rho) * e_skip) / opt);
    }
    return worst;
  };
  EXPECT_LT(worst_expected(0.5), worst_expected(0.0) - 0.1);
  EXPECT_LT(worst_expected(0.5), worst_expected(1.0) - 0.1);
  EXPECT_NEAR(worst_expected(0.5), 0.5 * (1.0 + kPhi * kPhi), 1e-9);
}

}  // namespace
}  // namespace qbss::core
