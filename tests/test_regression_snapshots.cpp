// Regression snapshots: exact energies of every algorithm on fixed-seed
// instances, pinned to the values produced by the audited implementation.
// Any change to an algorithm, a generator, the PRNG or the step-function
// algebra that alters results shows up here first. Snapshots use a
// relative tolerance of 1e-9 (values are closed-form sums; bit-identical
// across runs, near-identical across compilers).
#include <gtest/gtest.h>

#include "gen/compression.hpp"
#include "gen/random_instances.hpp"
#include "qbss/avrq.hpp"
#include "qbss/bkpq.hpp"
#include "qbss/clairvoyant.hpp"
#include "qbss/crad.hpp"
#include "qbss/crcd.hpp"
#include "qbss/oaq.hpp"

namespace qbss::core {
namespace {

constexpr double kTol = 1e-9;

QInstance online_42() { return gen::random_online(12, 8.0, 0.5, 4.0, 42); }

TEST(Snapshot, AvrqEnergy) {
  EXPECT_NEAR(avrq(online_42()).energy(3.0), 12337.1297663861,
              kTol * 12337.0);
}

TEST(Snapshot, BkpqNominalEnergy) {
  EXPECT_NEAR(bkpq(online_42()).nominal_energy(3.0), 84231.0005950558,
              kTol * 84231.0);
}

TEST(Snapshot, OaqEnergy) {
  EXPECT_NEAR(oaq(online_42()).energy(3.0), 6027.84482057426,
              kTol * 6028.0);
}

TEST(Snapshot, ClairvoyantEnergy) {
  EXPECT_NEAR(clairvoyant_energy(online_42(), 3.0), 2513.01755435405,
              kTol * 2513.0);
}

TEST(Snapshot, CrcdEnergy) {
  const QInstance inst = gen::random_common_deadline(12, 6.0, 42);
  EXPECT_NEAR(crcd(inst).energy(3.0), 12361.9000135315, kTol * 12362.0);
}

TEST(Snapshot, CradEnergy) {
  const QInstance inst = gen::random_arbitrary_deadlines(12, 10.0, 42);
  EXPECT_NEAR(crad(inst).energy(3.0), 7124.62183088857, kTol * 7125.0);
}

TEST(Snapshot, CrcdOnCompressionCorpus) {
  gen::CompressionConfig cfg;
  cfg.files = 12;
  const QInstance inst = gen::compression_instance(cfg, 42);
  EXPECT_NEAR(crcd(inst).energy(2.0), 100.516268100709, kTol * 100.5);
}

// Generators are part of the snapshot contract: the first job of the
// seed-42 online instance must never change.
TEST(Snapshot, GeneratorFirstJobPinned) {
  const QInstance inst = online_42();
  const QJob& j = inst.job(0);
  EXPECT_NEAR(j.release, 7.3975435626031008, 1e-12);
  EXPECT_NEAR(j.deadline, 11.36885726259046, 1e-12);
  EXPECT_NEAR(j.query_cost, 0.53168677870536374, 1e-12);
  EXPECT_NEAR(j.upper_bound, 1.2966982250688806, 1e-12);
  EXPECT_NEAR(j.exact_load, 0.88181108404997555, 1e-12);
}

}  // namespace
}  // namespace qbss::core
