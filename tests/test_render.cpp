// Tests for the ASCII renderer: structural properties of the output
// (dimensions, monotone shading, job glyphs), not pixel-perfect strings.
#include "io/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "scheduling/multi/avr_m.hpp"
#include "scheduling/yds.hpp"

namespace qbss::io {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(RenderProfile, HasRequestedDimensions) {
  const StepFunction f = StepFunction::constant({0.0, 4.0}, 2.0);
  const std::string text = render_profile(f, 32, 5, "title");
  const auto lines = lines_of(text);
  // title + 5 chart rows + axis + labels.
  ASSERT_EQ(lines.size(), 8u);
  EXPECT_EQ(lines[0], "title");
  // Chart rows start with '^' or '|' and contain exactly 32 plot columns.
  EXPECT_EQ(lines[1][0], '^');
  EXPECT_EQ(lines[5][0], '|');
}

TEST(RenderProfile, ConstantFunctionFillsAllRows) {
  const StepFunction f = StepFunction::constant({0.0, 1.0}, 1.0);
  const std::string text = render_profile(f, 16, 4);
  for (const std::string& line : lines_of(text)) {
    if (line.empty() || (line[0] != '|' && line[0] != '^')) continue;
    // Every plot column reaches every level for a constant function.
    for (int c = 1; c <= 16; ++c) {
      EXPECT_EQ(line[static_cast<std::size_t>(c)], '#');
    }
  }
}

TEST(RenderProfile, StaircaseShowsDecreasingHeights) {
  StepFunction f;
  f.add_constant({0.0, 1.0}, 3.0);
  f.add_constant({1.0, 2.0}, 1.0);
  const std::string text = render_profile(f, 20, 6);
  const auto lines = lines_of(text);
  // Top row: only the left half is filled.
  const std::string& top = lines[0];
  EXPECT_EQ(top[1], '#');
  EXPECT_EQ(top[19], ' ');
  // Bottom chart row: both halves filled.
  const std::string& bottom = lines[5];
  EXPECT_EQ(bottom[1], '#');
  EXPECT_EQ(bottom[19], '#');
}

TEST(RenderSchedule, OneLanePerJobPlusProfile) {
  scheduling::Instance inst;
  inst.add(0.0, 2.0, 2.0);
  inst.add(1.0, 3.0, 1.0);
  const scheduling::Schedule s = scheduling::yds(inst);
  const std::string text = render_schedule(s, 24);
  EXPECT_NE(text.find("job 0"), std::string::npos);
  EXPECT_NE(text.find("job 1"), std::string::npos);
  EXPECT_NE(text.find("speed:"), std::string::npos);
}

TEST(RenderMachineSchedule, OneLanePerMachineWithJobDigits) {
  scheduling::Instance inst;
  inst.add(0.0, 1.0, 4.0);
  inst.add(0.0, 1.0, 1.0);
  const scheduling::MachineSchedule ms = scheduling::avr_m(inst, 2);
  const std::string text = render_machine_schedule(ms, 20);
  const auto lines = lines_of(text);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("m0", 0), 0u);
  EXPECT_NE(lines[0].find('0'), std::string::npos);  // big job on m0
  EXPECT_NE(lines[1].find('1'), std::string::npos);  // small job on m1
}

TEST(RenderProfile, EmptyFunctionStillRenders) {
  const StepFunction f;
  const std::string text = render_profile(f, 16, 3);
  EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace qbss::io
