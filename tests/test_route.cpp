// Tests for qbss::route: hash-ring determinism, weighted placement and
// bounded key movement; the endpoint grammar shared with svc; topology
// parsing; the breaker state machine under an injected clock; and an
// end-to-end fleet — two real servers behind an in-process Router —
// covering byte-identity with a direct backend call, trace-id echo,
// per-backend stats, hot-key replication, breaker failover when a
// backend dies, and the no-backend shed path.
#include "route/health.hpp"
#include "route/ring.hpp"
#include "route/router.hpp"
#include "route/topology.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_instances.hpp"
#include "svc/client.hpp"
#include "svc/endpoint.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace qbss::route {
namespace {

std::vector<std::pair<std::string, double>> unit_nodes(int n) {
  std::vector<std::pair<std::string, double>> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.emplace_back("node" + std::to_string(i), 1.0);
  }
  return nodes;
}

TEST(HashRing, OrderIndependentAndDeterministic) {
  std::vector<std::pair<std::string, double>> nodes = {
      {"gamma", 1.0}, {"alpha", 2.0}, {"beta", 0.5}};
  const HashRing forward(nodes);
  std::reverse(nodes.begin(), nodes.end());
  const HashRing reversed(nodes);

  ASSERT_EQ(forward.size(), 3u);
  ASSERT_EQ(reversed.size(), 3u);
  // Indices are name-sorted regardless of construction order.
  EXPECT_EQ(forward.name(0), "alpha");
  EXPECT_EQ(forward.name(1), "beta");
  EXPECT_EQ(forward.name(2), "gamma");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(forward.name(i), reversed.name(i));
  }
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const std::uint64_t hash =
        HashRing::key_hash("key-" + std::to_string(k));
    ASSERT_EQ(forward.primary(hash), reversed.primary(hash));
    ASSERT_EQ(forward.successors(hash, 2), reversed.successors(hash, 2));
  }
}

TEST(HashRing, KeyHashIsStable) {
  // key_hash is a pure function of the bytes: stable within a process,
  // different for different keys, and never equal for the vnode labels
  // of distinct nodes (collisions would merge ring points).
  EXPECT_EQ(HashRing::key_hash("qbss"), HashRing::key_hash("qbss"));
  EXPECT_NE(HashRing::key_hash("qbss"), HashRing::key_hash("qbst"));
  EXPECT_NE(HashRing::key_hash(""), HashRing::key_hash("0"));
}

TEST(HashRing, WeightedPlacementWithinTolerance) {
  const HashRing ring(
      {{"light", 1.0}, {"medium", 2.0}, {"heavy", 4.0}});
  std::map<std::string, int> owned;
  const int kKeys = 40000;
  for (int k = 0; k < kKeys; ++k) {
    const std::uint64_t hash =
        HashRing::key_hash("sample:" + std::to_string(k));
    owned[ring.name(ring.primary(hash))]++;
  }
  // Expected shares 1/7, 2/7, 4/7; vnode placement noise at 64 vnodes
  // per unit weight stays well inside a +-35% relative band.
  const auto share = [&](const char* name) {
    return static_cast<double>(owned[name]) / kKeys;
  };
  EXPECT_NEAR(share("light"), 1.0 / 7.0, 0.35 / 7.0);
  EXPECT_NEAR(share("medium"), 2.0 / 7.0, 0.7 / 7.0);
  EXPECT_NEAR(share("heavy"), 4.0 / 7.0, 1.4 / 7.0);
}

TEST(HashRing, AddingANodeMovesOnlyKeysToIt) {
  const HashRing before(unit_nodes(5));
  auto grown = unit_nodes(5);
  grown.emplace_back("node5", 1.0);
  const HashRing after(grown);

  const int kKeys = 20000;
  int moved = 0;
  for (int k = 0; k < kKeys; ++k) {
    const std::uint64_t hash =
        HashRing::key_hash("move:" + std::to_string(k));
    const std::string& old_owner = before.name(before.primary(hash));
    const std::string& new_owner = after.name(after.primary(hash));
    if (old_owner != new_owner) {
      ++moved;
      // Consistent hashing's defining property: a remapped key can only
      // have moved TO the new node.
      ASSERT_EQ(new_owner, "node5");
    }
  }
  // ~1/6 of keys move; allow generous slack for vnode placement noise.
  EXPECT_GT(moved, kKeys / 12);
  EXPECT_LT(moved, kKeys / 3);
}

TEST(HashRing, RemovingANodeMovesOnlyItsKeys) {
  const HashRing before(unit_nodes(5));
  auto shrunk = unit_nodes(5);
  shrunk.erase(shrunk.begin() + 2);  // drop node2
  const HashRing after(shrunk);

  const int kKeys = 20000;
  int moved = 0;
  for (int k = 0; k < kKeys; ++k) {
    const std::uint64_t hash =
        HashRing::key_hash("del:" + std::to_string(k));
    const std::string& old_owner = before.name(before.primary(hash));
    const std::string& new_owner = after.name(after.primary(hash));
    if (old_owner != new_owner) {
      ++moved;
      ASSERT_EQ(old_owner, "node2");  // only node2's keys may move
    } else {
      ASSERT_NE(old_owner, "node2");
    }
  }
  EXPECT_GT(moved, kKeys / 12);
  EXPECT_LT(moved, kKeys / 3);
}

TEST(HashRing, SuccessorsAreDistinctAndNeverThePrimary) {
  const HashRing ring(unit_nodes(4));
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const std::uint64_t hash =
        HashRing::key_hash("succ:" + std::to_string(k));
    const std::size_t owner = ring.primary(hash);
    const std::vector<std::size_t> two = ring.successors(hash, 2);
    ASSERT_EQ(two.size(), 2u);
    ASSERT_NE(two[0], owner);
    ASSERT_NE(two[1], owner);
    ASSERT_NE(two[0], two[1]);
    // Asking for more than exists caps at the other nodes.
    const std::vector<std::size_t> all = ring.successors(hash, 10);
    ASSERT_EQ(all.size(), 3u);
    for (const std::size_t s : all) ASSERT_NE(s, owner);
  }
}

TEST(Endpoint, ParsesEveryGrammarForm) {
  svc::Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(svc::parse_endpoint("unix:/tmp/a.sock", &endpoint, &error));
  EXPECT_EQ(endpoint.socket_path, "/tmp/a.sock");
  EXPECT_EQ(svc::endpoint_to_string(endpoint), "unix:/tmp/a.sock");

  ASSERT_TRUE(svc::parse_endpoint("/tmp/b.sock", &endpoint, &error));
  EXPECT_EQ(endpoint.socket_path, "/tmp/b.sock");

  ASSERT_TRUE(svc::parse_endpoint("7070", &endpoint, &error));
  EXPECT_EQ(endpoint.tcp_port, 7070);
  EXPECT_TRUE(endpoint.host.empty());
  EXPECT_EQ(svc::endpoint_to_string(endpoint), "127.0.0.1:7070");

  ASSERT_TRUE(svc::parse_endpoint("127.0.0.1:8080", &endpoint, &error));
  EXPECT_EQ(endpoint.tcp_port, 8080);
  EXPECT_TRUE(endpoint.host.empty());  // loopback is the default host

  ASSERT_TRUE(svc::parse_endpoint("localhost:9090", &endpoint, &error));
  EXPECT_EQ(endpoint.tcp_port, 9090);
  EXPECT_TRUE(endpoint.host.empty());

  ASSERT_TRUE(svc::parse_endpoint("10.1.2.3:80", &endpoint, &error));
  EXPECT_EQ(endpoint.host, "10.1.2.3");
  EXPECT_EQ(endpoint.tcp_port, 80);
  EXPECT_EQ(svc::endpoint_to_string(endpoint), "10.1.2.3:80");
}

TEST(Endpoint, RejectsBadForms) {
  svc::Endpoint endpoint;
  std::string error;
  EXPECT_FALSE(svc::parse_endpoint("", &endpoint, &error));
  EXPECT_FALSE(svc::parse_endpoint("unix:", &endpoint, &error));
  EXPECT_FALSE(svc::parse_endpoint("0", &endpoint, &error));
  EXPECT_FALSE(svc::parse_endpoint("70000", &endpoint, &error));
  EXPECT_FALSE(svc::parse_endpoint("words", &endpoint, &error));
  EXPECT_FALSE(svc::parse_endpoint(":80", &endpoint, &error));
  EXPECT_FALSE(svc::parse_endpoint("example.com:80", &endpoint, &error))
      << "DNS names must be rejected (router never resolves)";
  EXPECT_FALSE(svc::parse_endpoint("127.0.0.1:notaport", &endpoint,
                                   &error));
}

TEST(Topology, ParsesNamesAddressesWeightsAndComments) {
  std::istringstream in(
      "# fleet\n"
      "alpha unix:/tmp/a.sock\n"
      "\n"
      "beta 127.0.0.1:7070 2.5  # twice the hardware\n"
      "gamma 7071\n");
  Topology topology;
  std::string error;
  ASSERT_TRUE(parse_topology(in, &topology, &error)) << error;
  ASSERT_EQ(topology.backends.size(), 3u);
  EXPECT_EQ(topology.backends[0].name, "alpha");
  EXPECT_EQ(topology.backends[0].endpoint.socket_path, "/tmp/a.sock");
  EXPECT_DOUBLE_EQ(topology.backends[0].weight, 1.0);
  EXPECT_EQ(topology.backends[1].endpoint.tcp_port, 7070);
  EXPECT_DOUBLE_EQ(topology.backends[1].weight, 2.5);
  EXPECT_EQ(topology.backends[2].endpoint.tcp_port, 7071);

  const auto nodes = topology.ring_nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[1].first, "beta");
  EXPECT_DOUBLE_EQ(nodes[1].second, 2.5);
}

TEST(Topology, RejectsBadLines) {
  const auto fails = [](const char* text) {
    std::istringstream in(text);
    Topology topology;
    std::string error;
    const bool ok = parse_topology(in, &topology, &error);
    EXPECT_FALSE(ok) << text;
    EXPECT_FALSE(error.empty());
    return error;
  };
  EXPECT_NE(fails("alpha\n").find("line 1"), std::string::npos);
  fails("alpha unix:/a.sock 0\n");       // weight must be positive
  fails("alpha unix:/a.sock -1\n");      // negative weight
  fails("alpha unix:/a.sock nope\n");    // non-numeric weight
  fails("alpha unix:/a.sock 1 extra\n");  // trailing token
  fails("alpha badhost:xy\n");           // bad address
  fails("alpha unix:/a.sock\nalpha unix:/b.sock\n");  // duplicate name
  fails("# only a comment\n");           // no backends at all
}

TEST(Breaker, TripsAfterThresholdAndReportsEdgesOnce) {
  Breaker breaker(BreakerConfig{3, 100.0});
  const std::int64_t t0 = 1'000'000'000;
  EXPECT_TRUE(breaker.allow(t0));
  EXPECT_FALSE(breaker.record_failure(t0));  // 1st failure: no edge
  EXPECT_FALSE(breaker.record_failure(t0));  // 2nd: still closed
  EXPECT_TRUE(breaker.allow(t0));
  EXPECT_TRUE(breaker.record_failure(t0));  // 3rd: the down edge
  EXPECT_EQ(breaker.state(t0), Breaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(t0));          // open: skip
  EXPECT_FALSE(breaker.record_failure(t0));  // already down: no 2nd edge
  EXPECT_EQ(breaker.failures(), 4);
}

TEST(Breaker, HalfOpenProbeClosesOrReopens) {
  const std::int64_t ms = 1'000'000;
  Breaker breaker(BreakerConfig{1, 100.0});
  EXPECT_TRUE(breaker.record_failure(0));  // threshold 1: trips at once
  EXPECT_FALSE(breaker.allow(50 * ms));    // cooldown still running
  EXPECT_EQ(breaker.state(100 * ms), Breaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(100 * ms));    // claims the probe slot
  EXPECT_FALSE(breaker.allow(100 * ms));   // only one probe at a time
  EXPECT_TRUE(breaker.record_success(100 * ms));  // the up edge
  EXPECT_EQ(breaker.state(100 * ms), Breaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(100 * ms));

  // Round two: a failed probe re-opens silently with a fresh cooldown.
  EXPECT_TRUE(breaker.record_failure(200 * ms));
  EXPECT_TRUE(breaker.allow(300 * ms));            // the probe
  EXPECT_FALSE(breaker.record_failure(300 * ms));  // no second down edge
  EXPECT_FALSE(breaker.allow(350 * ms));           // cooldown restarted
  EXPECT_TRUE(breaker.allow(400 * ms));
  EXPECT_TRUE(breaker.record_success(400 * ms));
}

// ---------------------------------------------------------------------
// End to end: two real servers behind an in-process Router.

std::string socket_path(const char* tag) {
  return "/tmp/qbss-route-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

svc::Request solve_request(std::uint64_t seed) {
  svc::Request request;
  request.algo = "bkpq";
  request.alpha = 3.0;
  request.instance = gen::random_online(8, 10.0, 0.5, 4.0, seed);
  return request;
}

struct Fleet {
  std::string b1_path = socket_path("b1");
  std::string b2_path = socket_path("b2");
  std::string router_path = socket_path("r");
  std::unique_ptr<svc::Server> b1;
  std::unique_ptr<svc::Server> b2;
  std::unique_ptr<Router> router;

  explicit Fleet(RouterConfig config = {}) {
    svc::ServerConfig backend;
    backend.workers = 2;
    backend.socket_path = b1_path;
    b1 = std::make_unique<svc::Server>(backend);
    backend.socket_path = b2_path;
    b2 = std::make_unique<svc::Server>(backend);
    std::string error;
    if (!b1->start(&error) || !b2->start(&error)) {
      ADD_FAILURE() << "backend start: " << error;
      return;
    }
    config.socket_path = router_path;
    config.topology.backends.push_back(
        BackendSpec{"b1", svc::Endpoint{b1_path, "", 0}, 1.0});
    config.topology.backends.push_back(
        BackendSpec{"b2", svc::Endpoint{b2_path, "", 0}, 1.0});
    router = std::make_unique<Router>(std::move(config));
    if (!router->start(&error)) {
      ADD_FAILURE() << "router start: " << error;
    }
  }

  ~Fleet() {
    if (router) {
      router->shutdown();
      router->wait();
    }
    for (svc::Server* server : {b1.get(), b2.get()}) {
      if (server != nullptr) {
        server->shutdown();
        server->wait();
      }
    }
    for (const std::string& path : {b1_path, b2_path, router_path}) {
      std::remove(path.c_str());
    }
  }
};

RouterConfig fast_config() {
  RouterConfig config;
  config.health_interval_ms = 50.0;
  config.breaker_failures = 2;
  config.breaker_open_ms = 200.0;
  config.backend_retries = 0;
  config.backend_timeout_ms = 2000.0;
  config.stats_interval_ms = 50.0;
  config.hot_threshold = 3;
  config.replicas = 1;
  return config;
}

TEST(Router, ProxiesByteIdenticallyAndEchoesTraceIds) {
  Fleet fleet(fast_config());
  ASSERT_TRUE(fleet.router);

  svc::Client via_router;
  std::string error;
  ASSERT_TRUE(via_router.connect_unix(fleet.router_path, &error)) << error;
  ASSERT_TRUE(via_router.ping(&error)) << error;

  const svc::Request request = solve_request(7);
  via_router.set_next_trace_id(0xabcdef12345ULL);
  svc::Client::Reply routed;
  ASSERT_TRUE(via_router.call(request, &routed, &error)) << error;
  ASSERT_EQ(routed.status, svc::Status::kOk) << routed.payload;
  // The router must relay the client's trace id end to end, not mint
  // its own.
  EXPECT_EQ(routed.trace_id, 0xabcdef12345ULL);

  // Byte-identity: any backend computes the same payload for the same
  // canonical key, so a direct call to a *specific* backend must match
  // the routed bytes exactly, whichever node the ring picked.
  svc::Client direct;
  ASSERT_TRUE(direct.connect_unix(fleet.b1_path, &error)) << error;
  svc::Client::Reply reference;
  ASSERT_TRUE(direct.call(request, &reference, &error)) << error;
  ASSERT_EQ(reference.status, svc::Status::kOk);
  EXPECT_EQ(routed.payload, reference.payload);

  // A repeat through the router is a backend cache hit, relayed via the
  // cache-hit flag, and byte-identical again.
  svc::Client::Reply repeat;
  ASSERT_TRUE(via_router.call(request, &repeat, &error)) << error;
  ASSERT_EQ(repeat.status, svc::Status::kOk);
  EXPECT_EQ(repeat.payload, routed.payload);
}

TEST(Router, StatsReportPerBackendRows) {
  Fleet fleet(fast_config());
  ASSERT_TRUE(fleet.router);

  svc::Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(fleet.router_path, &error)) << error;
  svc::Client::Reply first;
  ASSERT_TRUE(client.call(solve_request(11), &first, &error)) << error;
  ASSERT_EQ(first.status, svc::Status::kOk);

  svc::Client::Reply stats;
  ASSERT_TRUE(client.stats("json", &stats, &error)) << error;
  EXPECT_NE(stats.payload.find("\"role\":\"route\""), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("backend.b1"), std::string::npos);
  EXPECT_NE(stats.payload.find("backend.b2"), std::string::npos);
  EXPECT_NE(stats.payload.find("state=closed"), std::string::npos);

  const std::vector<Router::BackendStatus> status =
      fleet.router->backend_status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status[0].name, "b1");
  EXPECT_EQ(status[1].name, "b2");
  EXPECT_EQ(status[0].forwarded + status[1].forwarded, 1u);
}

TEST(Router, HotKeysReplicateToTheSuccessor) {
  Fleet fleet(fast_config());  // hot_threshold 3, replicas 1
  ASSERT_TRUE(fleet.router);

  svc::Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(fleet.router_path, &error)) << error;
  const svc::Request request = solve_request(23);
  for (int i = 0; i < 4; ++i) {
    svc::Client::Reply reply;
    ASSERT_TRUE(client.call(request, &reply, &error)) << error;
    ASSERT_EQ(reply.status, svc::Status::kOk);
  }
  EXPECT_EQ(fleet.router->hot_keys(), 1u);

  // Replication is asynchronous; with two nodes the single successor is
  // whichever backend is not the primary.
  bool replicated = false;
  for (int spin = 0; spin < 100 && !replicated; ++spin) {
    for (const Router::BackendStatus& status :
         fleet.router->backend_status()) {
      if (status.replicated > 0) replicated = true;
    }
    if (!replicated) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(replicated)
      << "hot key never reached the successor backend";
}

TEST(Router, FailsOverWhenABackendDiesAndShedsWhenAllDo) {
  RouterConfig config = fast_config();
  config.hot_threshold = 0;  // isolate failover from hot rotation
  Fleet fleet(std::move(config));
  ASSERT_TRUE(fleet.router);

  svc::Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(fleet.router_path, &error)) << error;

  // Find one request owned by each backend so the kill is guaranteed to
  // hit a covered key range.
  const HashRing ring({{"b1", 1.0}, {"b2", 1.0}});
  svc::Request owned_by_b2;
  bool found = false;
  for (std::uint64_t seed = 1; seed < 64 && !found; ++seed) {
    svc::Request candidate = solve_request(seed);
    const std::uint64_t hash =
        HashRing::key_hash(svc::cache_key(candidate));
    if (ring.name(ring.primary(hash)) == "b2") {
      owned_by_b2 = std::move(candidate);
      found = true;
    }
  }
  ASSERT_TRUE(found);

  // Kill b2. Its keys must fail over to b1 with the client still seeing
  // a clean kOk.
  fleet.b2->shutdown();
  fleet.b2->wait();
  svc::Client::Reply reply;
  ASSERT_TRUE(client.call(owned_by_b2, &reply, &error)) << error;
  EXPECT_EQ(reply.status, svc::Status::kOk) << reply.payload;

  // The breaker hears about the failures; b2 leaves the closed state
  // once the threshold (2) is crossed — the failed proxy call plus the
  // 50 ms health probes get there quickly.
  bool b2_down = false;
  for (int spin = 0; spin < 100 && !b2_down; ++spin) {
    for (const Router::BackendStatus& status :
         fleet.router->backend_status()) {
      if (status.name == "b2" &&
          status.state != Breaker::State::kClosed) {
        b2_down = true;
      }
    }
    if (!b2_down) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(b2_down);

  // Kill b1 too: with no backend left the router sheds rather than
  // hanging the client.
  fleet.b1->shutdown();
  fleet.b1->wait();
  svc::Client::Reply shed;
  ASSERT_TRUE(client.call(solve_request(5), &shed, &error)) << error;
  EXPECT_EQ(shed.status, svc::Status::kShed);
  EXPECT_NE(shed.payload.find("no_backend"), std::string::npos)
      << shed.payload;
}

}  // namespace
}  // namespace qbss::route
