// Scale smoke tests: the library at workload sizes a real deployment
// would see — every result still validated, wall-clock kept modest by
// choosing the near-linear algorithms for the largest sizes.
#include <gtest/gtest.h>

#include <chrono>

#include "common/xoshiro.hpp"

#include "gen/random_instances.hpp"
#include "qbss/avrq.hpp"
#include "qbss/avrq_m.hpp"
#include "qbss/clairvoyant.hpp"
#include "qbss/crcd.hpp"
#include "scheduling/yds_common.hpp"

namespace qbss {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(Scale, AvrqFiveHundredJobsValidates) {
  const core::QInstance inst =
      gen::random_online(500, 100.0, 0.5, 5.0, 2026);
  const auto start = Clock::now();
  const core::QbssRun run = core::avrq(inst);
  const auto report = core::validate_run(inst, run);
  EXPECT_TRUE(report.feasible);
  EXPECT_GT(run.energy(3.0), 0.0);
  EXPECT_LT(seconds_since(start), 10.0);
}

TEST(Scale, CrcdOneThousandJobs) {
  const core::QInstance inst =
      gen::random_common_deadline(1000, 16.0, 2027);
  const auto start = Clock::now();
  const core::QbssRun run = core::crcd(inst);
  EXPECT_TRUE(core::validate_run(inst, run).feasible);
  EXPECT_LT(seconds_since(start), 10.0);
}

TEST(Scale, YdsCommonReleaseTwoThousandJobs) {
  scheduling::Instance inst;
  Xoshiro256 rng(2028);
  for (int j = 0; j < 2000; ++j) {
    inst.add(0.0, rng.uniform(0.5, 50.0), rng.uniform(0.1, 2.0));
  }
  const auto start = Clock::now();
  const scheduling::Schedule s = scheduling::yds_common_release(inst);
  EXPECT_TRUE(scheduling::validate(inst, s).feasible);
  EXPECT_LT(seconds_since(start), 10.0);
}

TEST(Scale, AvrqMHundredJobsEightMachines) {
  const core::QInstance inst =
      gen::random_online(100, 20.0, 0.5, 4.0, 2029);
  const auto start = Clock::now();
  const core::QbssMultiRun run = core::avrq_m(inst, 8);
  EXPECT_TRUE(core::validate_multi_run(inst, run).feasible);
  EXPECT_LT(seconds_since(start), 10.0);
}

TEST(Scale, ClairvoyantHundredFiftyJobs) {
  // General YDS is the cubic-ish bottleneck; 150 jobs must stay snappy.
  const core::QInstance inst =
      gen::random_online(150, 30.0, 0.5, 4.0, 2030);
  const auto start = Clock::now();
  const scheduling::Schedule opt = core::clairvoyant_schedule(inst);
  EXPECT_TRUE(
      scheduling::validate(core::clairvoyant_instance(inst), opt).feasible);
  EXPECT_LT(seconds_since(start), 20.0);
}

}  // namespace
}  // namespace qbss
