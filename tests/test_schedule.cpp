// Tests for the fluid schedule representation, its validator, and the EDF
// allocator — the machinery every algorithm's output passes through.
#include "scheduling/schedule.hpp"

#include <gtest/gtest.h>

#include "scheduling/edf.hpp"

namespace qbss::scheduling {
namespace {

Instance two_job_instance() {
  Instance inst;
  inst.add(0.0, 2.0, 4.0);  // density 2
  inst.add(1.0, 3.0, 2.0);  // density 1
  return inst;
}

TEST(Schedule, BuilderDerivesSpeedFromRates) {
  const Instance inst = two_job_instance();
  ScheduleBuilder b(inst.size());
  b.add_rate(0, {0.0, 2.0}, 2.0);
  b.add_rate(1, {1.0, 3.0}, 1.0);
  const Schedule s = std::move(b).build();
  EXPECT_DOUBLE_EQ(s.speed().value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.speed().value(1.5), 3.0);
  EXPECT_DOUBLE_EQ(s.speed().value(2.5), 1.0);
  EXPECT_DOUBLE_EQ(s.max_speed(), 3.0);
}

TEST(Schedule, EnergyIsClosedFormIntegral) {
  ScheduleBuilder b(1);
  b.add_rate(0, {0.0, 2.0}, 3.0);
  const Schedule s = std::move(b).build();
  EXPECT_DOUBLE_EQ(s.energy(2.0), 18.0);
  EXPECT_DOUBLE_EQ(s.energy(3.0), 54.0);
}

TEST(ScheduleValidate, AcceptsExactSchedule) {
  const Instance inst = two_job_instance();
  ScheduleBuilder b(inst.size());
  b.add_rate(0, {0.0, 2.0}, 2.0);
  b.add_rate(1, {1.0, 3.0}, 1.0);
  const Schedule s = std::move(b).build();
  const ValidationReport report = validate(inst, s);
  EXPECT_TRUE(report.feasible) << (report.errors.empty()
                                       ? ""
                                       : report.errors.front());
}

TEST(ScheduleValidate, RejectsUnderExecution) {
  const Instance inst = two_job_instance();
  ScheduleBuilder b(inst.size());
  b.add_rate(0, {0.0, 2.0}, 2.0);
  b.add_rate(1, {1.0, 3.0}, 0.5);  // only 1 of 2 units
  const Schedule s = std::move(b).build();
  EXPECT_FALSE(validate(inst, s).feasible);
}

TEST(ScheduleValidate, RejectsWorkOutsideWindow) {
  const Instance inst = two_job_instance();
  ScheduleBuilder b(inst.size());
  b.add_rate(0, {0.0, 2.0}, 2.0);
  b.add_rate(1, {0.0, 2.0}, 1.0);  // job 1 released at 1, ran from 0
  const Schedule s = std::move(b).build();
  EXPECT_FALSE(validate(inst, s).feasible);
}

TEST(ScheduleValidate, RejectsWrongJobCount) {
  const Instance inst = two_job_instance();
  ScheduleBuilder b(1);
  b.add_rate(0, {0.0, 2.0}, 2.0);
  const Schedule s = std::move(b).build();
  EXPECT_FALSE(validate(inst, s).feasible);
}

TEST(Edf, CompletesFeasibleInstanceAtConstantSpeed) {
  Instance inst;
  inst.add(0.0, 1.0, 1.0);
  inst.add(0.0, 2.0, 1.0);
  const StepFunction profile = StepFunction::constant({0.0, 2.0}, 1.0);
  const EdfResult r = edf_allocate(inst, profile);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(validate(inst, r.schedule).feasible);
  // EDF runs the earlier deadline first.
  EXPECT_DOUBLE_EQ(r.schedule.rate(0).integral(Interval{0.0, 1.0}), 1.0);
}

TEST(Edf, DetectsInfeasibleProfile) {
  Instance inst;
  inst.add(0.0, 1.0, 2.0);  // needs speed 2
  const StepFunction profile = StepFunction::constant({0.0, 1.0}, 1.0);
  const EdfResult r = edf_allocate(inst, profile);
  EXPECT_FALSE(r.feasible);
  EXPECT_NEAR(r.unfinished[0], 1.0, 1e-9);
}

TEST(Edf, IdlesWhenNoReleasedWork) {
  Instance inst;
  inst.add(1.0, 2.0, 1.0);
  const StepFunction profile = StepFunction::constant({0.0, 2.0}, 1.0);
  const EdfResult r = edf_allocate(inst, profile);
  EXPECT_TRUE(r.feasible);
  // Nothing may execute before release even though speed is available.
  EXPECT_DOUBLE_EQ(r.schedule.rate(0).integral(Interval{0.0, 1.0}), 0.0);
  EXPECT_LE(r.schedule.speed().integral(), profile.integral());
}

TEST(Edf, PreemptsForEarlierDeadline) {
  Instance inst;
  inst.add(0.0, 4.0, 2.0);  // long job
  inst.add(1.0, 2.0, 1.0);  // urgent job arriving mid-flight
  const StepFunction profile = StepFunction::constant({0.0, 4.0}, 1.0);
  const EdfResult r = edf_allocate(inst, profile);
  ASSERT_TRUE(r.feasible);
  // Urgent job owns (1, 2] exclusively.
  EXPECT_DOUBLE_EQ(r.schedule.rate(1).integral(Interval{1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(r.schedule.rate(0).integral(Interval{1.0, 2.0}), 0.0);
}

TEST(Edf, HandlesZeroSpeedGaps) {
  Instance inst;
  inst.add(0.0, 3.0, 1.0);
  StepFunction profile;
  profile.add_constant({0.0, 1.0}, 0.5);
  profile.add_constant({2.0, 3.0}, 0.5);  // gap in (1, 2]
  const EdfResult r = edf_allocate(inst, profile);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.schedule.rate(0).integral(Interval{1.0, 2.0}), 0.0);
}

TEST(Edf, FeasibilityPredicateMatchesAllocation) {
  Instance inst;
  inst.add(0.0, 1.0, 0.9);
  EXPECT_TRUE(edf_feasible(inst, StepFunction::constant({0.0, 1.0}, 1.0)));
  EXPECT_FALSE(edf_feasible(inst, StepFunction::constant({0.0, 1.0}, 0.5)));
}

TEST(Instance, EventTimesSortedDistinct) {
  const Instance inst = two_job_instance();
  const std::vector<Time> ts = inst.event_times();
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(Instance, TotalWorkAndHorizon) {
  const Instance inst = two_job_instance();
  EXPECT_DOUBLE_EQ(inst.total_work(), 6.0);
  EXPECT_DOUBLE_EQ(inst.horizon(), 3.0);
  EXPECT_FALSE(inst.common_release());
}

TEST(Schedule, PerJobAccessors) {
  const Instance inst = two_job_instance();
  ScheduleBuilder b(inst.size());
  b.add_rate(0, {0.0, 2.0}, 2.0);
  b.add_rate(1, {1.0, 3.0}, 1.0);
  const Schedule s = std::move(b).build();
  EXPECT_DOUBLE_EQ(s.work_of(0), 4.0);
  EXPECT_DOUBLE_EQ(s.work_of(1), 2.0);
  EXPECT_DOUBLE_EQ(s.start_time(0), 0.0);
  EXPECT_DOUBLE_EQ(s.completion_time(0), 2.0);
  EXPECT_DOUBLE_EQ(s.start_time(1), 1.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 3.0);
}

TEST(Schedule, AccessorsForIdleJob) {
  ScheduleBuilder b(2);
  b.add_rate(0, {0.0, 1.0}, 1.0);
  const Schedule s = std::move(b).build();
  EXPECT_DOUBLE_EQ(s.work_of(1), 0.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 0.0);
  EXPECT_DOUBLE_EQ(s.start_time(1), 0.0);
}

TEST(ClassicalJob, DensityAndValidity) {
  const ClassicalJob j{1.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(j.density(), 2.0);
  EXPECT_TRUE(j.valid());
  EXPECT_FALSE((ClassicalJob{2.0, 1.0, 1.0}).valid());
  EXPECT_FALSE((ClassicalJob{0.0, 1.0, -1.0}).valid());
}

}  // namespace
}  // namespace qbss::scheduling
