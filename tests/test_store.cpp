// Tests for qbss::svc::store and the two-tier ResultCache: CRC32C known
// answers, record round-trips across close/reopen, crash recovery
// (bit-flipped payloads and headers, torn tails, deleted manifests,
// unlisted-file sweeps), segment rotation, the byte-budget drop policy,
// compaction of superseded garbage, write-behind persistence with disk
// promotion, a warm restart through the full server serving
// byte-identical disk hits, and the `at=store` fault-injection sites.
#include "svc/store/crc32c.hpp"
#include "svc/store/segment_store.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "gen/random_instances.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace qbss::svc::store {
namespace {

/// A /tmp scratch directory unique to this process and test, removed
/// (with its files) on destruction.
struct TempDir {
  explicit TempDir(const char* tag)
      : path("/tmp/qbss-store-test-" + std::to_string(::getpid()) + "-" +
             tag) {
    remove_all();
    ::mkdir(path.c_str(), 0755);
  }
  ~TempDir() { remove_all(); }
  void remove_all() const {
    for (const char* name :
         {"MANIFEST", "MANIFEST.qtmp", "stray.tmp"}) {
      std::remove((path + "/" + name).c_str());
    }
    for (std::uint64_t id = 1; id <= 64; ++id) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "seg-%08llu.qseg",
                    static_cast<unsigned long long>(id));
      std::remove((path + "/" + buf).c_str());
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

std::string seg_path(const TempDir& dir, std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%08llu.qseg",
                static_cast<unsigned long long>(id));
  return dir.path + "/" + buf;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// On-disk size of one record: fixed header + key + payload.
std::size_t record_size(const std::string& key, const std::string& payload) {
  return kRecordHeaderSize + key.size() + payload.size();
}

/// snprintf-based key/value builders — string operator+ chains inlined
/// into test bodies trip a GCC 12 -Wrestrict false positive.
std::string numbered(const char* prefix, int i) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%d", prefix, i);
  return buf;
}

std::string round_value(int round, int i) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "round-%d-value-%d", round, i);
  return buf;
}

TEST(Crc32c, KnownAnswerAndComposition) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  // Extension must compose exactly like concatenation — this is what
  // lets record checksums cover key+payload without a joined copy.
  EXPECT_EQ(crc32c_extend(crc32c("abc"), "def"), crc32c("abcdef"));
}

TEST(SegmentStore, RoundTripsRecordsAcrossReopen) {
  TempDir dir("roundtrip");
  StoreConfig config;
  config.dir = dir.path;
  {
    SegmentStore store;
    RecoveryStats recovery;
    std::string error;
    ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
    EXPECT_EQ(recovery.records, 0u);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store.append(numbered("key", i),
                               numbered("payload-", i * 31), &error))
          << error;
    }
    const StorePayloadPtr hit = store.find("key3");
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, "payload-93");
    EXPECT_FALSE(store.find("absent"));
    store.close();
  }
  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.records, 8u);
  EXPECT_EQ(recovery.corrupt_skipped, 0u);
  EXPECT_EQ(recovery.torn_tail_bytes, 0u);
  EXPECT_FALSE(recovery.manifest_rebuilt);
  for (int i = 0; i < 8; ++i) {
    const StorePayloadPtr hit = store.find(numbered("key", i));
    ASSERT_TRUE(hit) << "key" << i;
    EXPECT_EQ(*hit, numbered("payload-", i * 31));
  }
  EXPECT_EQ(store.verify(nullptr), 0u);
}

TEST(SegmentStore, LaterAppendSupersedesEarlier) {
  TempDir dir("supersede");
  StoreConfig config;
  config.dir = dir.path;
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    ASSERT_TRUE(store.append("k", "old", &error)) << error;
    ASSERT_TRUE(store.append("k", "new", &error)) << error;
    const StorePayloadPtr hit = store.find("k");
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, "new");
    store.close();
  }
  // Recovery replays in order, so the later record must still win.
  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.records, 1u);
  const StorePayloadPtr hit = store.find("k");
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "new");
}

TEST(SegmentStore, RecoverySkipsPayloadBitFlipKeepsRest) {
  TempDir dir("bitflip");
  StoreConfig config;
  config.dir = dir.path;
  const std::string keys[3] = {"alpha", "beta", "gamma"};
  const std::string payloads[3] = {"one-payload", "two-payload",
                                   "three-payload"};
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store.append(keys[i], payloads[i], &error)) << error;
    }
    store.close();
  }
  // Flip one byte inside the middle record's payload: its data checksum
  // must fail, it alone is skipped, and its well-formed lengths let the
  // scan resume at the very next record.
  const std::string path = seg_path(dir, 1);
  std::string bytes = read_file(path);
  const std::size_t flip = record_size(keys[0], payloads[0]) +
                           kRecordHeaderSize + keys[1].size() + 2;
  ASSERT_LT(flip, bytes.size());
  bytes[flip] = static_cast<char>(bytes[flip] ^ 0x40);
  write_file(path, bytes);

  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.corrupt_skipped, 1u);
  EXPECT_EQ(recovery.records, 2u);
  EXPECT_TRUE(store.find(keys[0]));
  EXPECT_FALSE(store.find(keys[1])) << "corrupt record must read as a miss";
  EXPECT_TRUE(store.find(keys[2]));
  EXPECT_EQ(store.verify(nullptr), 0u)
      << "recovery-skipped records are dead, not verify failures";
}

TEST(SegmentStore, RecoveryResynchronizesPastDamagedHeader) {
  TempDir dir("badheader");
  StoreConfig config;
  config.dir = dir.path;
  const std::string keys[3] = {"alpha", "beta", "gamma"};
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    for (const std::string& key : keys) {
      ASSERT_TRUE(store.append(key, "payload-for-" + key, &error)) << error;
    }
    store.close();
  }
  // Damage the middle record's header: its lengths can no longer be
  // trusted, so the scanner must resynchronize by finding the next
  // offset that validates as a whole header (the gamma record).
  const std::string path = seg_path(dir, 1);
  std::string bytes = read_file(path);
  const std::size_t header_at = record_size(keys[0], "payload-for-alpha");
  bytes[header_at + 9] = static_cast<char>(bytes[header_at + 9] ^ 0xff);
  write_file(path, bytes);

  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.corrupt_skipped, 1u);
  EXPECT_EQ(recovery.records, 2u);
  EXPECT_TRUE(store.find("alpha"));
  EXPECT_FALSE(store.find("beta"));
  EXPECT_TRUE(store.find("gamma"))
      << "records after a damaged header must be resynchronized, not lost";
}

TEST(SegmentStore, TornTailIsTruncatedOnRecovery) {
  TempDir dir("torntail");
  StoreConfig config;
  config.dir = dir.path;
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    ASSERT_TRUE(store.append("whole", "intact-payload", &error)) << error;
    ASSERT_TRUE(store.append("torn", "this-append-was-interrupted", &error))
        << error;
    store.close();
  }
  // Cut the file mid-way through the second record, as a crash during
  // the append would: recovery must truncate the tail off and keep the
  // first record.
  const std::string path = seg_path(dir, 1);
  std::string bytes = read_file(path);
  const std::size_t keep = record_size("whole", "intact-payload") + 10;
  ASSERT_LT(keep, bytes.size());
  write_file(path, bytes.substr(0, keep));

  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.torn_tail_bytes, 10u);
  EXPECT_EQ(recovery.records, 1u);
  EXPECT_EQ(recovery.corrupt_skipped, 0u) << "a torn tail is not corruption";
  EXPECT_TRUE(store.find("whole"));
  EXPECT_FALSE(store.find("torn"));

  // The truncation is physical: the next append starts from a clean
  // record boundary and must survive another reopen.
  ASSERT_TRUE(store.append("after", "fresh", &error)) << error;
  store.close();
  SegmentStore again;
  RecoveryStats second;
  ASSERT_TRUE(again.open(config, &second, &error)) << error;
  EXPECT_EQ(second.torn_tail_bytes, 0u);
  EXPECT_EQ(second.records, 2u);
  EXPECT_TRUE(again.find("whole"));
  EXPECT_TRUE(again.find("after"));
}

TEST(SegmentStore, MissingManifestIsRebuiltFromSegments) {
  TempDir dir("manifest");
  StoreConfig config;
  config.dir = dir.path;
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store.append(numbered("k", i), "v", &error))
          << error;
    }
    store.close();
  }
  ASSERT_EQ(std::remove((dir.path + "/MANIFEST").c_str()), 0);

  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_TRUE(recovery.manifest_rebuilt);
  EXPECT_EQ(recovery.records, 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store.find(numbered("k", i))) << i;
  }
  // Recovery rewrote the manifest; the next open is clean again.
  store.close();
  SegmentStore again;
  RecoveryStats second;
  ASSERT_TRUE(again.open(config, &second, &error)) << error;
  EXPECT_FALSE(second.manifest_rebuilt);
}

TEST(SegmentStore, SweepsUnlistedSegmentsAndStrayFiles) {
  TempDir dir("sweep");
  StoreConfig config;
  config.dir = dir.path;
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    ASSERT_TRUE(store.append("kept", "payload", &error)) << error;
    store.close();
  }
  // A segment file the manifest never heard of (interrupted compaction)
  // and an in-progress tmp file must both be deleted, not resurrected.
  write_file(seg_path(dir, 40), "garbage from an interrupted rewrite");
  write_file(dir.path + "/stray.tmp", "tmp");

  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_FALSE(recovery.manifest_rebuilt);
  EXPECT_EQ(recovery.records, 1u);
  EXPECT_TRUE(store.find("kept"));
  struct stat st{};
  EXPECT_NE(::stat(seg_path(dir, 40).c_str(), &st), 0)
      << "unlisted segment must be swept";
  EXPECT_NE(::stat((dir.path + "/stray.tmp").c_str(), &st), 0)
      << "stray tmp file must be swept";
}

TEST(SegmentStore, SealsAndRecoversMultipleSegments) {
  TempDir dir("rotate");
  StoreConfig config;
  config.dir = dir.path;
  config.segment_bytes = 4096;  // the clamp floor — rotate fast
  config.budget_bytes = 1u << 20;
  const std::string payload(900, 'x');
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(store.append(numbered("k", i), payload, &error))
          << error;
    }
    EXPECT_GE(store.stats().segments, 3u) << "appends must have rotated";
    store.close();
  }
  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.records, 12u);
  EXPECT_GE(recovery.segments, 3u);
  for (int i = 0; i < 12; ++i) {
    const StorePayloadPtr hit = store.find(numbered("k", i));
    ASSERT_TRUE(hit) << i;
    EXPECT_EQ(*hit, payload);
  }
}

TEST(SegmentStore, BudgetDropsOldestSegmentWhole) {
  TempDir dir("budget");
  StoreConfig config;
  config.dir = dir.path;
  config.segment_bytes = 4096;
  config.budget_bytes = 8192;  // room for ~2 segments
  const std::string payload(1400, 'b');
  SegmentStore store;
  std::string error;
  ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(store.append(numbered("k", i), payload, &error))
        << error;
  }
  const StoreStats stats = store.stats();
  EXPECT_GT(stats.dropped_segments, 0u);
  EXPECT_LE(stats.bytes, config.budget_bytes + config.segment_bytes)
      << "the store must stay near its budget";
  // Oldest records go with their segment; the newest survive.
  EXPECT_FALSE(store.contains("k0"));
  EXPECT_TRUE(store.contains("k11"));
}

TEST(SegmentStore, CompactDropsSupersededGarbageAndSurvivesReopen) {
  TempDir dir("compact");
  StoreConfig config;
  config.dir = dir.path;
  std::uint64_t before_bytes = 0;
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(store.append(
            numbered("k", i),
            round_value(round, i),
            &error))
            << error;
      }
    }
    before_bytes = store.stats().bytes;
    ASSERT_TRUE(store.compact(&error)) << error;
    const StoreStats after = store.stats();
    EXPECT_LT(after.bytes, before_bytes)
        << "superseded rounds must be gone";
    EXPECT_EQ(after.live_records, 6u);
    for (int i = 0; i < 6; ++i) {
      const StorePayloadPtr hit = store.find(numbered("k", i));
      ASSERT_TRUE(hit) << i;
      EXPECT_EQ(*hit, round_value(3, i));
    }
    store.close();
  }
  // The manifest swap must leave a store the next open reads cleanly.
  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.records, 6u);
  EXPECT_EQ(recovery.corrupt_skipped, 0u);
  EXPECT_FALSE(recovery.manifest_rebuilt);
  for (int i = 0; i < 6; ++i) {
    const StorePayloadPtr hit = store.find(numbered("k", i));
    ASSERT_TRUE(hit) << i;
    EXPECT_EQ(*hit, round_value(3, i));
  }
  EXPECT_EQ(store.verify(nullptr), 0u);
}

TEST(SegmentStore, VerifyReportsPostRecoveryBitrot) {
  TempDir dir("bitrot");
  StoreConfig config;
  config.dir = dir.path;
  SegmentStore store;
  std::string error;
  ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
  ASSERT_TRUE(store.append("rotkey", "will-rot-on-disk", &error)) << error;
  store.sync();
  // Corrupt the payload *behind the open store's back*: the index still
  // lists the record, so verify must re-read, fail the checksum, and
  // report it.
  std::string bytes = read_file(seg_path(dir, 1));
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 1);
  write_file(seg_path(dir, 1), bytes);

  std::vector<std::string> report;
  EXPECT_EQ(store.verify(&report), 1u);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].find("checksum"), std::string::npos) << report[0];
  // A find() on the rotten key behaves like recovery: miss + drop.
  EXPECT_FALSE(store.find("rotkey"));
  EXPECT_FALSE(store.contains("rotkey"));
}

TEST(TieredCache, WriteBehindPersistsAndPromotesAcrossRestart) {
  TempDir dir("tiered");
  DiskTierConfig disk;
  disk.store.dir = dir.path;
  disk.sync = SyncMode::kAlways;
  {
    ResultCache cache(/*capacity=*/4, /*shards=*/2);
    store::RecoveryStats recovery;
    std::string error;
    ASSERT_TRUE(cache.attach_store(disk, &recovery, &error)) << error;
    for (int i = 0; i < 10; ++i) {
      cache.put(numbered("key", i), numbered("value-", i));
    }
    cache.flush();
    // 10 puts into a 4-entry memory tier: evictions are demotions, and
    // every put must be on disk regardless.
    const store::SegmentStore* store = cache.disk();
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->stats().live_records, 10u);
  }
  // A fresh cache on the same directory: the memory tier is empty, so
  // the first get is a disk hit that promotes, the second a memory hit.
  ResultCache cache(/*capacity=*/4, /*shards=*/2);
  store::RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(cache.attach_store(disk, &recovery, &error)) << error;
  EXPECT_EQ(recovery.records, 10u);
  bool from_disk = false;
  PayloadPtr hit = cache.get("key7", &from_disk);
  ASSERT_TRUE(hit);
  EXPECT_TRUE(from_disk);
  EXPECT_EQ(*hit, "value-7");
  hit = cache.get("key7", &from_disk);
  ASSERT_TRUE(hit);
  EXPECT_FALSE(from_disk) << "the promoted entry must hit in memory";
  EXPECT_EQ(*hit, "value-7");
  EXPECT_FALSE(cache.get("never-stored", &from_disk));
  EXPECT_FALSE(from_disk);
}

TEST(TieredCache, WarmRestartServesByteIdenticalDiskHits) {
  TempDir dir("warm");
  const std::string socket =
      "/tmp/qbss-store-test-" + std::to_string(::getpid()) + "-warm.sock";
  Request request;
  request.algo = "bkpq";
  request.instance = gen::random_online(8, 10.0, 0.5, 4.0, 33);

  std::string first_payload;
  {
    ServerConfig config;
    config.socket_path = socket;
    config.workers = 1;
    config.cache_dir = dir.path;
    config.cache_sync = "always";
    Server server(std::move(config));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect_unix(socket, &error)) << error;
    Client::Reply reply;
    ASSERT_TRUE(client.call(request, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kOk) << reply.payload;
    EXPECT_FALSE(reply.cache_hit);
    first_payload = reply.payload;
    server.shutdown();
    server.wait();
  }

  ServerConfig config;
  config.socket_path = socket;
  config.workers = 1;
  config.cache_dir = dir.path;
  Server server(std::move(config));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connect_unix(socket, &error)) << error;

  // First request after the restart: nothing solved this lifetime, so
  // the answer must come off disk, flagged as such, byte-identical.
  Client::Reply warm;
  ASSERT_TRUE(client.call(request, &warm, &error)) << error;
  ASSERT_EQ(warm.status, Status::kOk) << warm.payload;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.disk_hit);
  EXPECT_EQ(warm.payload, first_payload);

  // The disk hit promoted the entry: the repeat is a memory hit with
  // the same bytes.
  Client::Reply memory;
  ASSERT_TRUE(client.call(request, &memory, &error)) << error;
  ASSERT_EQ(memory.status, Status::kOk);
  EXPECT_TRUE(memory.cache_hit);
  EXPECT_FALSE(memory.disk_hit);
  EXPECT_EQ(memory.payload, first_payload);

  server.shutdown();
  server.wait();
  std::remove(socket.c_str());
}

#ifndef QBSS_FAULTS_OFF
TEST(StoreFaults, AtStoreClausesInjectOnStoreSitesOnly) {
  struct InjectorReset {
    ~InjectorReset() { faults::injector().configure(faults::FaultPlan{}); }
  } reset;
  TempDir dir("faults");
  StoreConfig config;
  config.dir = dir.path;
  SegmentStore store;
  std::string error;
  ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
  ASSERT_TRUE(store.append("present", "payload", &error)) << error;

  // write_err at the store site: the append fails, the store survives.
  faults::FaultPlan plan;
  std::string plan_error;
  ASSERT_TRUE(faults::parse_plan("seed=5,write_err:at=store:p=1", &plan,
                                 &plan_error))
      << plan_error;
  faults::injector().configure(plan);
  EXPECT_FALSE(store.append("victim", "never-lands", &error));
  EXPECT_NE(error.find("injected store write"), std::string::npos) << error;

  // read_short at the store site: a present key reads as a miss.
  ASSERT_TRUE(faults::parse_plan("seed=5,read_short:at=store:p=1", &plan,
                                 &plan_error))
      << plan_error;
  faults::injector().configure(plan);
  EXPECT_FALSE(store.find("present"));
  EXPECT_TRUE(store.contains("present"))
      << "an injected short read is transient, not an index drop";

  // Back to no faults: everything works again.
  faults::injector().configure(faults::FaultPlan{});
  const StorePayloadPtr hit = store.find("present");
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "payload");
}

TEST(StoreFaults, CorruptHeaderLandsOnDiskAndRecoverySkipsIt) {
  struct InjectorReset {
    ~InjectorReset() { faults::injector().configure(faults::FaultPlan{}); }
  } reset;
  TempDir dir("corruptinject");
  StoreConfig config;
  config.dir = dir.path;
  {
    SegmentStore store;
    std::string error;
    ASSERT_TRUE(store.open(config, nullptr, &error)) << error;
    ASSERT_TRUE(store.append("good", "kept-payload", &error)) << error;

    faults::FaultPlan plan;
    std::string plan_error;
    ASSERT_TRUE(faults::parse_plan("seed=9,corrupt_header:at=store:p=1",
                                   &plan, &plan_error))
        << plan_error;
    faults::injector().configure(plan);
    // The damaged record goes to disk but is never indexed — the fault
    // injects exactly the on-disk corruption recovery exists to absorb.
    ASSERT_TRUE(store.append("damaged", "poisoned-payload", &error)) << error;
    EXPECT_FALSE(store.contains("damaged"));
    faults::injector().configure(faults::FaultPlan{});
    ASSERT_TRUE(store.append("after", "also-kept", &error)) << error;
    store.close();
  }
  SegmentStore store;
  RecoveryStats recovery;
  std::string error;
  ASSERT_TRUE(store.open(config, &recovery, &error)) << error;
  EXPECT_EQ(recovery.corrupt_skipped, 1u);
  EXPECT_EQ(recovery.records, 2u);
  EXPECT_TRUE(store.find("good"));
  EXPECT_FALSE(store.find("damaged"));
  EXPECT_TRUE(store.find("after"))
      << "recovery must resynchronize past the injected corruption";
}
#endif  // QBSS_FAULTS_OFF

}  // namespace
}  // namespace qbss::svc::store
