// Tests for qbss::svc: frame header round-trips, request payload
// serialize/parse round-trips and rejection paths, canonical cache keys,
// the sharded LRU result cache, and an end-to-end server over a /tmp
// Unix-domain socket (energy parity with a direct core run, cache-hit
// byte-identity, queue-full and deadline shedding, coalescing, and the
// manifest epilogue written at shutdown). Robustness coverage: typed
// error replies for malformed/corrupted headers (plus a fuzz sweep over
// every header byte), idle-connection read timeouts, the retrying
// client surviving a full server restart with byte-identical cached
// payloads, the overload degradation window, and an in-process chaos
// soak against an active fault plan.
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/retry.hpp"
#include "svc/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "faults/faults.hpp"
#include "gen/random_instances.hpp"
#include "io/format.hpp"
#include "obs/diff.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "qbss/bkpq.hpp"
#include "scheduling/schedule.hpp"

namespace qbss::svc {
namespace {

core::QInstance small_instance(std::uint64_t seed) {
  return gen::random_online(8, 10.0, 0.5, 4.0, seed);
}

/// A /tmp socket path unique to this process and test (sun_path caps
/// paths at ~107 bytes, so the build tree is not an option).
std::string socket_path(const char* tag) {
  return "/tmp/qbss-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

TEST(Protocol, HeaderRoundTrip) {
  FrameHeader header;
  header.status = Status::kShed;
  header.flags = kFlagCacheHit;
  header.payload_len = 12345;
  header.request_id = 0xfeedfacecafebeefULL;

  unsigned char wire[kHeaderSize];
  encode_header(header, wire);
  FrameHeader back;
  std::string error;
  ASSERT_TRUE(decode_header(wire, &back, &error)) << error;
  EXPECT_EQ(back.status, Status::kShed);
  EXPECT_EQ(back.flags, kFlagCacheHit);
  EXPECT_EQ(back.payload_len, 12345u);
  EXPECT_EQ(back.request_id, 0xfeedfacecafebeefULL);
}

TEST(Protocol, HeaderRejectsBadMagicAndOversize) {
  FrameHeader header;
  unsigned char wire[kHeaderSize];
  encode_header(header, wire);
  wire[0] ^= 0xff;  // corrupt the magic
  FrameHeader back;
  std::string error;
  EXPECT_FALSE(decode_header(wire, &back, &error));

  header.payload_len = kMaxPayload + 1;
  encode_header(header, wire);
  error.clear();
  EXPECT_FALSE(decode_header(wire, &back, &error));
  EXPECT_NE(error.find("payload"), std::string::npos);
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.algo = "crcd";
  request.alpha = 2.25;
  request.machines = 3;
  request.want_schedule = true;
  request.deadline_ms = 17.5;
  request.instance = small_instance(7);

  Request back;
  std::string error;
  ASSERT_TRUE(parse_request(serialize_request(request), &back, &error))
      << error;
  EXPECT_EQ(back.verb, Verb::kSolve);
  EXPECT_EQ(back.algo, "crcd");
  EXPECT_EQ(back.alpha, 2.25);
  EXPECT_EQ(back.machines, 3);
  EXPECT_TRUE(back.want_schedule);
  EXPECT_EQ(back.deadline_ms, 17.5);
  ASSERT_EQ(back.instance.size(), request.instance.size());
  for (std::size_t i = 0; i < back.instance.size(); ++i) {
    const auto& a = request.instance.jobs()[i];
    const auto& b = back.instance.jobs()[i];
    EXPECT_EQ(a.release, b.release);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.query_cost, b.query_cost);
    EXPECT_EQ(a.upper_bound, b.upper_bound);
    EXPECT_EQ(a.exact_load, b.exact_load);
  }
}

TEST(Protocol, ParseRequestRejectsMalformedPayloads) {
  Request out;
  std::string error;
  EXPECT_FALSE(parse_request("nonsense\n", &out, &error));

  // alpha outside (1, 100].
  EXPECT_FALSE(parse_request(
      "qbss-svc/1 solve\nalgo: bkpq\nalpha: 1\ninstance:\n0 1 0.1 1 1\n",
      &out, &error));
  EXPECT_NE(error.find("alpha"), std::string::npos);

  // Unknown field.
  EXPECT_FALSE(parse_request(
      "qbss-svc/1 solve\nbogus: 1\ninstance:\n0 1 0.1 1 1\n", &out,
      &error));

  // Missing instance section.
  EXPECT_FALSE(
      parse_request("qbss-svc/1 solve\nalgo: bkpq\n", &out, &error));
  EXPECT_NE(error.find("instance"), std::string::npos);

  // Instance errors carry the section-relative line number.
  EXPECT_FALSE(parse_request(
      "qbss-svc/1 solve\ninstance:\n0 1 0.1 1\n", &out, &error));
  EXPECT_NE(error.find("instance line 1"), std::string::npos);
}

TEST(Protocol, CacheKeySeparatesResultDeterminingFields) {
  Request request;
  request.instance = small_instance(3);
  const std::string base = cache_key(request);
  EXPECT_EQ(cache_key(request), base) << "key must be deterministic";

  Request other = request;
  other.algo = "crcd";
  EXPECT_NE(cache_key(other), base);

  other = request;
  other.alpha = request.alpha + 0.5;
  EXPECT_NE(cache_key(other), base);

  other = request;
  other.want_schedule = !request.want_schedule;
  EXPECT_NE(cache_key(other), base);

  other = request;
  other.instance = small_instance(4);
  EXPECT_NE(cache_key(other), base);

  // deadline_ms is delivery policy, not a result-determining field.
  other = request;
  other.deadline_ms = 99.0;
  EXPECT_EQ(cache_key(other), base);

  // machines only matters for the multi-machine policy.
  other = request;
  other.machines = request.machines + 1;
  EXPECT_EQ(cache_key(other), base);
  other.algo = "avrq_m";
  Request multi = request;
  multi.algo = "avrq_m";
  EXPECT_NE(cache_key(other), cache_key(multi));

  // -0.0 loads normalize to +0.0 (same value, same schedule).
  Request zero_a;
  zero_a.instance.add(0.0, 4.0, 0.5, 2.0, 0.0);
  Request zero_b;
  zero_b.instance.add(-0.0, 4.0, 0.5, 2.0, 0.0);
  EXPECT_EQ(cache_key(zero_a), cache_key(zero_b));
}

TEST(Protocol, SolveMatchesDirectRunAndIsDeterministic) {
  Request request;
  request.algo = "bkpq";
  request.alpha = 2.5;
  request.want_schedule = true;
  request.instance = small_instance(11);

  std::string payload;
  std::string error;
  ASSERT_TRUE(solve_request(request, &payload, &error)) << error;
  std::string again;
  ASSERT_TRUE(solve_request(request, &again, &error)) << error;
  EXPECT_EQ(payload, again) << "equal requests must render identically";

  SolveResult result;
  ASSERT_TRUE(parse_solve_result(payload, &result, &error)) << error;
  EXPECT_EQ(result.algo, "bkpq");
  EXPECT_TRUE(result.valid);
  const core::QbssRun direct = core::bkpq(request.instance);
  EXPECT_DOUBLE_EQ(result.energy, direct.energy(request.alpha));
  EXPECT_DOUBLE_EQ(result.max_speed, direct.max_speed());

  // The dumped schedule re-validates through the ordinary readers.
  ASSERT_FALSE(result.classical_text.empty());
  ASSERT_FALSE(result.schedule_text.empty());
  std::istringstream classical_in(result.classical_text);
  std::istringstream schedule_in(result.schedule_text);
  const io::Parsed<scheduling::Instance> classical =
      io::read_instance(classical_in);
  ASSERT_TRUE(classical) << classical.error.message;
  const io::Parsed<scheduling::Schedule> schedule =
      io::read_schedule(schedule_in, classical.value->size());
  ASSERT_TRUE(schedule) << schedule.error.message;
  EXPECT_TRUE(scheduling::validate(*classical.value, *schedule.value)
                  .feasible);
}

TEST(Protocol, SolveRejectsUnknownAlgoAndEmptyInstance) {
  Request request;
  request.algo = "no-such-policy";
  request.instance = small_instance(1);
  std::string payload;
  std::string error;
  EXPECT_FALSE(solve_request(request, &payload, &error));
  EXPECT_NE(error.find("algo"), std::string::npos);

  request.algo = "bkpq";
  request.instance = core::QInstance{};
  EXPECT_FALSE(solve_request(request, &payload, &error));
}

TEST(Cache, LruEvictsOldestAndRefreshesOnGet) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  cache.put("a", "1");
  cache.put("b", "2");
  PayloadPtr value = cache.get("a");  // refresh: "a" becomes MRU
  ASSERT_TRUE(value);
  EXPECT_EQ(*value, "1");
  cache.put("c", "3");  // evicts "b", the LRU entry
  EXPECT_FALSE(cache.get("b"));
  EXPECT_TRUE(cache.get("a"));
  EXPECT_TRUE(cache.get("c"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  cache.put("a", "updated");
  value = cache.get("a");
  ASSERT_TRUE(value);
  EXPECT_EQ(*value, "updated");
  EXPECT_EQ(cache.size(), 2u) << "put of an existing key must not grow";
}

TEST(Cache, PinnedPayloadSurvivesEvictionAndRefresh) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  const PayloadPtr stored = cache.put("a", "original");
  ASSERT_TRUE(stored);
  const PayloadPtr pinned = cache.get("a");
  ASSERT_TRUE(pinned);
  EXPECT_EQ(pinned.get(), stored.get()) << "get must pin, not copy";

  // Refresh the key and push it out of the LRU entirely: a holder of the
  // old pin must keep reading the original bytes (this is what lets the
  // wire path sendmsg straight from a cache entry while eviction races).
  cache.put("a", "refreshed");
  cache.put("b", "2");
  cache.put("c", "3");
  EXPECT_FALSE(cache.get("a"));
  EXPECT_EQ(*pinned, "original");
}

TEST(Cache, ShardedCapacityHoldsManyKeys) {
  ResultCache cache(/*capacity=*/64, /*shards=*/8);
  for (int i = 0; i < 64; ++i) {
    cache.put("key" + std::to_string(i), std::to_string(i));
  }
  std::size_t present = 0;
  for (int i = 0; i < 64; ++i) {
    if (cache.get("key" + std::to_string(i))) ++present;
  }
  // Per-shard LRU: uneven shard fill may evict a few, never most.
  EXPECT_GE(present, 48u);
}

TEST(Cache, CapacityNotDivisibleByShardsKeepsFullBudget) {
  // Remainder entries are spread one-per-shard, never dropped
  // (docs/SERVICE.md documents the rounding rule).
  EXPECT_EQ(ResultCache(/*capacity=*/10, /*shards=*/4).capacity(), 10u);
  EXPECT_EQ(ResultCache(/*capacity=*/7, /*shards=*/3).capacity(), 7u);
  EXPECT_EQ(ResultCache(/*capacity=*/64, /*shards=*/8).capacity(), 64u);
  // Capacity below the shard count clamps up: every shard holds >= 1.
  EXPECT_EQ(ResultCache(/*capacity=*/3, /*shards=*/8).capacity(), 8u);
}

TEST(Cache, UnevenCapacityIsUsableNotJustReported) {
  // 7 entries over 3 shards used to silently truncate to 2 per shard
  // (6 total). Fill well past capacity and verify at least 7 of the
  // most recent keys survive in aggregate.
  ResultCache cache(/*capacity=*/7, /*shards=*/3);
  for (int i = 0; i < 64; ++i) {
    cache.put("key" + std::to_string(i), std::to_string(i));
  }
  std::size_t present = 0;
  for (int i = 0; i < 64; ++i) {
    if (cache.get("key" + std::to_string(i))) ++present;
  }
  EXPECT_EQ(present, 7u) << "all shards full => exactly capacity() live";
}

/// Spins up a server on a fresh /tmp socket, runs `body(path)`, then
/// shuts down and returns the manifest path (which `body` may ignore).
template <typename Body>
void with_server(ServerConfig config, const char* tag, Body body) {
  const std::string path = socket_path(tag);
  config.socket_path = path;
  Server server(std::move(config));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  body(path, server);
  server.shutdown();
  server.wait();
  std::remove(path.c_str());
}

TEST(Server, SolvesCachesAndServesByteIdenticalResults) {
  ServerConfig config;
  config.workers = 2;
  const std::string manifest_path =
      "/tmp/qbss-test-" + std::to_string(::getpid()) + "-manifest.json";
  config.manifest_path = manifest_path;
  config.manifest_extra.emplace_back("command", "test");

  with_server(config, "solve", [](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;
    ASSERT_TRUE(client.ping(&error)) << error;

    Request request;
    request.algo = "bkpq";
    request.alpha = 3.0;
    request.instance = small_instance(21);

    Client::Reply first;
    ASSERT_TRUE(client.call(request, &first, &error)) << error;
    ASSERT_EQ(first.status, Status::kOk) << first.payload;
    EXPECT_FALSE(first.cache_hit);

    SolveResult result;
    ASSERT_TRUE(parse_solve_result(first.payload, &result, &error))
        << error;
    const core::QbssRun direct = core::bkpq(request.instance);
    EXPECT_DOUBLE_EQ(result.energy, direct.energy(request.alpha));

    // The same request from a different connection must be answered
    // from the cache, byte-identically.
    Client other;
    ASSERT_TRUE(other.connect_unix(path, &error)) << error;
    Client::Reply second;
    ASSERT_TRUE(other.call(request, &second, &error)) << error;
    ASSERT_EQ(second.status, Status::kOk);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(second.payload, first.payload);
  });

  // The shutdown epilogue must parse back through the manifest reader
  // (the same path `qbss obs-diff` uses) and record the extras.
  std::string load_error;
  const std::optional<obs::ManifestData> manifest =
      obs::load_manifest_file(manifest_path, &load_error);
  ASSERT_TRUE(manifest.has_value()) << load_error;
  std::ifstream raw_in(manifest_path);
  std::stringstream raw;
  raw << raw_in.rdbuf();
  EXPECT_NE(raw.str().find("\"command\""), std::string::npos);
  EXPECT_NE(raw.str().find("\"test\""), std::string::npos);
#ifndef QBSS_OBS_OFF
  EXPECT_GT(manifest->counters.count("svc.requests"), 0u);
  EXPECT_GT(manifest->counters.count("svc.cache.hit"), 0u);
#endif
  std::remove(manifest_path.c_str());
}

#ifndef QBSS_OBS_OFF
TEST(Server, CacheHitTicksZeroCopyCounter) {
  const auto counter_value = [](const char* name) {
    std::uint64_t value = 0;
    for (const auto& [key, count] : obs::registry().snapshot()) {
      if (key == name) value = count;
    }
    return value;
  };
  ServerConfig config;
  config.workers = 1;
  with_server(config, "zerocopy", [&](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;

    Request request;
    request.algo = "bkpq";
    request.instance = small_instance(77);

    Client::Reply miss;
    ASSERT_TRUE(client.call(request, &miss, &error)) << error;
    ASSERT_EQ(miss.status, Status::kOk) << miss.payload;
    const std::uint64_t before = counter_value("svc.hit.zero_copy");

    Client::Reply hit;
    ASSERT_TRUE(client.call(request, &hit, &error)) << error;
    ASSERT_EQ(hit.status, Status::kOk);
    EXPECT_TRUE(hit.cache_hit);
    // The hit was answered straight from the pinned cache entry.
    EXPECT_EQ(counter_value("svc.hit.zero_copy"), before + 1);
  });
}
#endif

TEST(Server, MalformedPayloadGetsErrorStatusNotDisconnect) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "error", [](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;

    Request bad;
    bad.algo = "no-such-policy";
    bad.instance = small_instance(2);
    Client::Reply reply;
    ASSERT_TRUE(client.call(bad, &reply, &error)) << error;
    EXPECT_EQ(reply.status, Status::kError);
    EXPECT_NE(reply.payload.find("message:"), std::string::npos);

    // The connection survives; a good request still works.
    Request good;
    good.instance = small_instance(2);
    ASSERT_TRUE(client.call(good, &reply, &error)) << error;
    EXPECT_EQ(reply.status, Status::kOk);
  });
}

TEST(Server, QueueFullSheds) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  config.delay_ms = 60.0;  // hold the single worker busy
  with_server(config, "shed", [](const std::string& path, Server&) {
    // Distinct instances so neither the cache nor coalescing absorbs
    // the burst; more clients than worker+queue slots forces shedding.
    constexpr int kClients = 6;
    std::atomic<int> shed{0};
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect_unix(path, &error)) << error;
        Request request;
        request.instance = small_instance(100 + static_cast<unsigned>(c));
        Client::Reply reply;
        ASSERT_TRUE(client.call(request, &reply, &error)) << error;
        if (reply.status == Status::kShed) {
          shed.fetch_add(1);
          EXPECT_NE(reply.payload.find("queue_full"), std::string::npos);
        } else if (reply.status == Status::kOk) {
          ok.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_GT(shed.load(), 0) << "burst must overflow a depth-1 queue";
    EXPECT_GT(ok.load(), 0) << "admitted requests still complete";
  });
}

TEST(Server, ExpiredDeadlineSheds) {
  ServerConfig config;
  config.workers = 1;
  config.delay_ms = 80.0;
  with_server(config, "deadline", [](const std::string& path, Server&) {
    Client blocker;
    Client victim;
    std::string error;
    ASSERT_TRUE(blocker.connect_unix(path, &error)) << error;
    ASSERT_TRUE(victim.connect_unix(path, &error)) << error;

    // Occupy the single worker, then queue a request whose deadline
    // expires long before the worker frees up.
    Request slow;
    slow.instance = small_instance(61);
    Client::Reply slow_reply;
    std::thread blocker_thread([&] {
      ASSERT_TRUE(blocker.call(slow, &slow_reply, &error)) << error;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    Request urgent;
    urgent.instance = small_instance(62);
    urgent.deadline_ms = 1.0;
    Client::Reply reply;
    std::string victim_error;
    ASSERT_TRUE(victim.call(urgent, &reply, &victim_error))
        << victim_error;
    EXPECT_EQ(reply.status, Status::kShed);
    EXPECT_NE(reply.payload.find("deadline"), std::string::npos);
    blocker_thread.join();
    EXPECT_EQ(slow_reply.status, Status::kOk);
  });
}

TEST(Server, CoalescesIdenticalInflightRequests) {
  ServerConfig config;
  config.workers = 1;
  config.delay_ms = 60.0;
  config.queue_depth = 64;
  with_server(config, "coalesce", [](const std::string& path, Server&) {
    // Identical requests from several connections while the first is
    // still in flight: every reply must be ok and byte-identical even
    // though the queue only ever holds one task per key.
    constexpr int kClients = 4;
    Request request;
    request.instance = small_instance(77);
    std::vector<std::string> payloads(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect_unix(path, &error)) << error;
        Client::Reply reply;
        ASSERT_TRUE(client.call(request, &reply, &error)) << error;
        ASSERT_EQ(reply.status, Status::kOk);
        payloads[static_cast<std::size_t>(c)] = reply.payload;
      });
    }
    for (std::thread& t : threads) t.join();
    for (int c = 1; c < kClients; ++c) {
      EXPECT_EQ(payloads[static_cast<std::size_t>(c)], payloads[0]);
    }
  });
}

/// Connects a raw (unframed) Unix-domain socket to `path`, for tests
/// that need to put malformed bytes on the wire.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_raw(int fd, const unsigned char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Sends `wire` (a 24-byte header image) followed by `payload`, then
/// half-closes so the server never waits on more bytes from us, and
/// returns what came back.
ReadResult roundtrip_raw(const std::string& path,
                         const unsigned char wire[kHeaderSize],
                         const std::string& payload, FrameHeader* reply,
                         std::string* reply_payload) {
  const int fd = raw_connect(path);
  EXPECT_GE(fd, 0);
  if (fd < 0) return ReadResult::kError;
  EXPECT_TRUE(send_raw(fd, wire, kHeaderSize));
  if (!payload.empty()) {
    // A server that already rejected the header may close (RST) while
    // we are still writing the body; that is a legal outcome, not a
    // test failure.
    send_raw(fd, reinterpret_cast<const unsigned char*>(payload.data()),
             payload.size());
  }
  ::shutdown(fd, SHUT_WR);
  std::string error;
  const ReadResult rc = read_frame(fd, reply, reply_payload, &error);
  ::close(fd);
  return rc;
}

TEST(Server, BadMagicGetsTypedErrorReplyThenClose) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "badmagic", [](const std::string& path, Server&) {
    FrameHeader header;
    header.payload_len = 0;
    unsigned char wire[kHeaderSize];
    encode_header(header, wire);
    wire[0] ^= 0xff;  // not "QSS" any more

    FrameHeader reply;
    std::string payload;
    ASSERT_EQ(roundtrip_raw(path, wire, "", &reply, &payload),
              ReadResult::kFrame)
        << "a malformed header must be answered, not silently dropped";
    EXPECT_EQ(reply.status, Status::kError);
    EXPECT_NE(payload.find("bad frame magic"), std::string::npos)
        << payload;
  });
}

TEST(Server, VersionMismatchGetsDistinctTypedError) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "badver", [](const std::string& path, Server&) {
    FrameHeader header;
    unsigned char wire[kHeaderSize];
    encode_header(header, wire);
    wire[3] = 0x31;  // "QSS1": right protocol, old version byte

    FrameHeader reply;
    std::string payload;
    ASSERT_EQ(roundtrip_raw(path, wire, "", &reply, &payload),
              ReadResult::kFrame);
    EXPECT_EQ(reply.status, Status::kError);
    EXPECT_NE(payload.find("version mismatch"), std::string::npos)
        << payload;
  });
}

TEST(Server, OverLimitPayloadLengthGetsTypedError) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "overlen", [](const std::string& path, Server&) {
    FrameHeader header;
    unsigned char wire[kHeaderSize];
    encode_header(header, wire);
    // payload_len lives at bytes 12..15 (little-endian); write
    // kMaxPayload + 1 directly into the wire image.
    const std::uint32_t huge = kMaxPayload + 1;
    wire[12] = static_cast<unsigned char>(huge & 0xff);
    wire[13] = static_cast<unsigned char>((huge >> 8) & 0xff);
    wire[14] = static_cast<unsigned char>((huge >> 16) & 0xff);
    wire[15] = static_cast<unsigned char>((huge >> 24) & 0xff);

    FrameHeader reply;
    std::string payload;
    ASSERT_EQ(roundtrip_raw(path, wire, "", &reply, &payload),
              ReadResult::kFrame);
    EXPECT_EQ(reply.status, Status::kError);
    EXPECT_NE(payload.find("payload"), std::string::npos) << payload;
  });
}

TEST(Server, TruncatedHeaderJustClosesAndServerSurvives) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "trunc", [](const std::string& path, Server&) {
    const int fd = raw_connect(path);
    ASSERT_GE(fd, 0);
    const unsigned char partial[10] = {0x51, 0x53, 0x53, 0x32};
    ASSERT_TRUE(send_raw(fd, partial, sizeof partial));
    ::shutdown(fd, SHUT_WR);
    // A torn header cannot be answered (there is no request id to echo);
    // the server just closes.
    FrameHeader reply;
    std::string payload;
    std::string error;
    EXPECT_EQ(read_frame(fd, &reply, &payload, &error), ReadResult::kEof);
    ::close(fd);

    // The listener survived: a well-formed request still succeeds.
    Client client;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;
    ASSERT_TRUE(client.ping(&error)) << error;
  });
}

TEST(Server, StatsFrameReportsLifetimeAndWindow) {
  ServerConfig config;
  config.workers = 1;
  config.stats_interval_ms = 50.0;
  with_server(config, "stats", [](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;

    Request request;
    request.algo = "bkpq";
    request.instance = small_instance(31);
    Client::Reply reply;
    constexpr int kSolves = 5;
    for (int i = 0; i < kSolves; ++i) {
      ASSERT_TRUE(client.call(request, &reply, &error)) << error;
      ASSERT_EQ(reply.status, Status::kOk) << reply.payload;
    }

    Client::Reply stats;
    ASSERT_TRUE(client.stats("json", &stats, &error)) << error;
    const std::optional<obs::StatsData> frame =
        obs::parse_stats_json(stats.payload, &error);
    ASSERT_TRUE(frame.has_value()) << error << "\n" << stats.payload;
    EXPECT_GT(frame->uptime_seconds, 0.0);
    EXPECT_EQ(frame->extra.at("workers"), "1");
#ifdef QBSS_OBS_OFF
    // Observability compiled out: the stats verb still answers a
    // well-formed frame, with zeroed metrics.
    EXPECT_EQ(frame->lifetime.counters.count("svc.requests"), 0u);
#else
    EXPECT_GE(frame->lifetime.counters.at("svc.requests"),
              static_cast<double>(kSolves));
    EXPECT_GE(frame->lifetime.counters.at("svc.hit.zero_copy"), 1.0);
    EXPECT_GE(frame->lifetime.histograms.at("svc.latency_us").count, 1u);
#endif

    // The Prometheus exposition of the same registry.
    Client::Reply prom;
    ASSERT_TRUE(client.stats("prometheus", &prom, &error)) << error;
    EXPECT_NE(prom.payload.find("# TYPE qbss_uptime_seconds gauge"),
              std::string::npos)
        << prom.payload.substr(0, 200);
#ifndef QBSS_OBS_OFF
    EXPECT_NE(prom.payload.find("# TYPE qbss_svc_requests counter"),
              std::string::npos);
#endif

    // An unknown format is a typed error reply, not a disconnect.
    Request bad;
    bad.verb = Verb::kStats;
    bad.stats_format = "xml";
    Client::Reply rejected;
    ASSERT_TRUE(client.call(bad, &rejected, &error)) << error;
    EXPECT_EQ(rejected.status, Status::kError);
    ASSERT_TRUE(client.ping(&error)) << error;
  });
}

TEST(Server, TraceIdPropagatesEndToEnd) {
  const std::string trace_path =
      "/tmp/qbss-test-" + std::to_string(::getpid()) + "-trace.json";
  obs::set_trace_path(trace_path);
  ServerConfig config;
  config.workers = 1;
  config.trace_sample = 1;  // every nonzero id gets a span chain
  with_server(config, "traceid", [](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;

    Request request;
    request.algo = "bkpq";
    request.instance = small_instance(41);

    client.set_next_trace_id(0x1234abcdULL);
    Client::Reply reply;
    ASSERT_TRUE(client.call(request, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kOk) << reply.payload;
    EXPECT_EQ(client.last_trace_id(), 0x1234abcdULL);
    EXPECT_EQ(reply.trace_id, 0x1234abcdULL);  // echoed in the header

    // Auto-generated ids are nonzero and echoed too.
    ASSERT_TRUE(client.call(request, &reply, &error)) << error;
    EXPECT_NE(client.last_trace_id(), 0u);
    EXPECT_EQ(reply.trace_id, client.last_trace_id());
  });
  obs::flush_trace();
  obs::set_trace_path("");

  std::ifstream in(trace_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
#ifndef QBSS_OBS_OFF
  // The sampled span chain is attributable to the client-stamped id.
  EXPECT_NE(trace.find("0x1234abcd"), std::string::npos);
  EXPECT_NE(trace.find("req.accept"), std::string::npos);
  EXPECT_NE(trace.find("req.cache"), std::string::npos);
  EXPECT_NE(trace.find("req.write"), std::string::npos);
#endif
  std::remove(trace_path.c_str());
}

TEST(Server, HeaderFuzzNeverWedgesTheServer) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "fuzz", [](const std::string& path, Server&) {
    Request request;
    request.instance = small_instance(5);
    const std::string body = serialize_request(request);
    FrameHeader header;
    header.payload_len = static_cast<std::uint32_t>(body.size());
    header.request_id = 7;

    // Corrupt each header byte in turn. Depending on the byte this is a
    // bad magic, a bad version, an unknown status, an absurd length or a
    // still-valid header; the invariant is that the server always
    // answers or closes — it never crashes and never hangs the reader.
    // kError covers the race where the server rejects the header and
    // closes with our body bytes still unread (an RST on this end); the
    // ping below is what proves the server itself stayed healthy.
    for (std::size_t i = 0; i < kHeaderSize; ++i) {
      unsigned char wire[kHeaderSize];
      encode_header(header, wire);
      wire[i] ^= 0xff;
      FrameHeader reply;
      std::string payload;
      const ReadResult rc = roundtrip_raw(path, wire, body, &reply,
                                          &payload);
      EXPECT_TRUE(rc == ReadResult::kFrame || rc == ReadResult::kEof ||
                  rc == ReadResult::kError)
          << "byte " << i;
    }

    // And the server still serves.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;
    ASSERT_TRUE(client.ping(&error)) << error;
  });
}

TEST(Server, IdleConnectionIsClosedAfterTheReadTimeout) {
  ServerConfig config;
  config.workers = 1;
  config.read_timeout_ms = 100.0;
  with_server(config, "slowloris", [](const std::string& path, Server&) {
    const int fd = raw_connect(path);
    ASSERT_GE(fd, 0);
    // Send nothing. The slowloris defense must disconnect us; without it
    // this read would block forever (the 5 s cap is just a backstop).
    set_socket_timeouts(fd, 5000.0, 0.0);
    FrameHeader reply;
    std::string payload;
    std::string error;
    const ReadResult rc = read_frame(fd, &reply, &payload, &error);
    EXPECT_TRUE(rc == ReadResult::kEof || rc == ReadResult::kError)
        << "server must drop an idle connection";
    ::close(fd);

    // Active clients are unaffected.
    Client client;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;
    ASSERT_TRUE(client.ping(&error)) << error;
  });
}

TEST(Server, RetryingClientSurvivesServerRestartByteIdentically) {
  const std::string path = socket_path("restart");
  Endpoint endpoint;
  endpoint.socket_path = path;
  RetryPolicy policy;
  policy.max_retries = 8;
  policy.base_ms = 5.0;
  policy.attempt_timeout_ms = 2000.0;
  RetryingClient client(endpoint, policy);

  Request request;
  request.algo = "bkpq";
  request.want_schedule = true;
  request.instance = small_instance(33);

  ServerConfig config;
  config.workers = 1;
  config.socket_path = path;
  std::string error;
  std::string first_payload;
  {
    Server server(config);
    ASSERT_TRUE(server.start(&error)) << error;
    Client::Reply reply;
    ASSERT_TRUE(client.call(request, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kOk) << reply.payload;
    first_payload = reply.payload;
    server.shutdown();
    server.wait();
  }

  // The server is gone; the client's socket is dead. A fresh server on
  // the same path must be reachable through the same RetryingClient
  // without any caller-side reconnect logic.
  {
    Server server(config);
    ASSERT_TRUE(server.start(&error)) << error;
    Client::Reply reply;
    ASSERT_TRUE(client.call(request, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kOk) << reply.payload;
    EXPECT_EQ(reply.payload, first_payload)
        << "recomputed result must be byte-identical to the cached one";
    EXPECT_GE(client.reconnects(), 1u);
    server.shutdown();
    server.wait();
  }
  std::remove(path.c_str());
}

TEST(Protocol, MidPayloadDisconnectIsAnErrorNotEof) {
  // A clean close on the header boundary is kEof (peer is just done);
  // a close after a good header but before the payload completes is a
  // torn frame and must surface as kError so callers retry it.
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  FrameHeader header;
  header.payload_len = 10;
  unsigned char wire[kHeaderSize];
  encode_header(header, wire);
  ASSERT_TRUE(send_raw(pair[0], wire, kHeaderSize));
  const unsigned char partial[4] = {'t', 'o', 'r', 'n'};
  ASSERT_TRUE(send_raw(pair[0], partial, sizeof partial));
  ::close(pair[0]);

  FrameHeader reply;
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame(pair[1], &reply, &payload, &error),
            ReadResult::kError);
  EXPECT_NE(error.find("mid-payload"), std::string::npos) << error;
  ::close(pair[1]);
}

TEST(Server, RetryingClientRetriesMidPayloadDisconnect) {
  // A hand-rolled one-shot flaky server: the first connection answers
  // with a good header and then tears the connection mid-payload; the
  // second answers in full. The retrying client must treat the torn
  // read as a transport failure (not a reply) and transparently retry.
  const std::string path = socket_path("tornpayload");
  std::remove(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 2), 0);

  const std::string full_payload(64, 'p');
  std::thread flaky([listener, &full_payload] {
    for (int attempt = 0; attempt < 2; ++attempt) {
      const int fd = ::accept(listener, nullptr, nullptr);
      ASSERT_GE(fd, 0);
      FrameHeader request;
      std::string request_payload;
      std::string error;
      ASSERT_EQ(read_frame(fd, &request, &request_payload, &error),
                ReadResult::kFrame)
          << error;
      FrameHeader response;
      response.status = Status::kOk;
      response.request_id = request.request_id;
      response.payload_len =
          static_cast<std::uint32_t>(full_payload.size());
      if (attempt == 0) {
        // Good header, four payload bytes, then a clean close: exactly
        // the tear a server crash mid-write produces.
        unsigned char wire[kHeaderSize];
        encode_header(response, wire);
        ASSERT_TRUE(send_raw(fd, wire, kHeaderSize));
        ASSERT_TRUE(send_raw(
            fd,
            reinterpret_cast<const unsigned char*>(full_payload.data()),
            4));
      } else {
        ASSERT_TRUE(write_frame(fd, response, full_payload, &error)) << error;
      }
      ::close(fd);
    }
  });

  Endpoint endpoint;
  endpoint.socket_path = path;
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_ms = 1.0;
  policy.attempt_timeout_ms = 2000.0;
  RetryingClient client(endpoint, policy);
  Request request;
  request.algo = "bkpq";
  request.instance = small_instance(77);
  Client::Reply reply;
  std::string error;
  ASSERT_TRUE(client.call(request, &reply, &error)) << error;
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.payload, full_payload);
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.reconnects(), 1u);

  flaky.join();
  ::close(listener);
  std::remove(path.c_str());
}

TEST(Server, DegradedWindowServesCacheAndShedsMisses) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  config.delay_ms = 100.0;  // hold the single worker busy
  config.degraded_window_ms = 10000.0;
  with_server(config, "degraded", [](const std::string& path, Server&) {
    std::string error;
    Client primer;
    ASSERT_TRUE(primer.connect_unix(path, &error)) << error;
    Request cached_request;
    cached_request.instance = small_instance(50);
    Client::Reply reply;
    ASSERT_TRUE(primer.call(cached_request, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kOk);

    // Occupy the worker, fill the depth-1 queue, then overflow it to
    // trip the degradation window.
    std::thread blocker([&path] {
      Client c;
      std::string e;
      ASSERT_TRUE(c.connect_unix(path, &e)) << e;
      Request r;
      r.instance = small_instance(51);
      Client::Reply rep;
      ASSERT_TRUE(c.call(r, &rep, &e)) << e;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::thread filler([&path] {
      Client c;
      std::string e;
      ASSERT_TRUE(c.connect_unix(path, &e)) << e;
      Request r;
      r.instance = small_instance(52);
      Client::Reply rep;
      ASSERT_TRUE(c.call(r, &rep, &e)) << e;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    Client prober;
    ASSERT_TRUE(prober.connect_unix(path, &error)) << error;
    Request overflow;
    overflow.instance = small_instance(53);
    ASSERT_TRUE(prober.call(overflow, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kShed) << reply.payload;
    EXPECT_NE(reply.payload.find("queue_full"), std::string::npos);

    // Inside the window: a cache miss is fast-shed with the degraded
    // reason, while the primed key is still served from the cache.
    Request miss;
    miss.instance = small_instance(54);
    ASSERT_TRUE(prober.call(miss, &reply, &error)) << error;
    ASSERT_EQ(reply.status, Status::kShed) << reply.payload;
    EXPECT_NE(reply.payload.find("degraded"), std::string::npos);

    ASSERT_TRUE(prober.call(cached_request, &reply, &error)) << error;
    EXPECT_EQ(reply.status, Status::kOk) << reply.payload;
    EXPECT_TRUE(reply.cache_hit);

    blocker.join();
    filler.join();
  });
}

#ifndef QBSS_FAULTS_OFF
TEST(Server, ChaosSoakCompletesEveryRequestByteIdentically) {
  // Everything the fault plan throws at the stack — dropped
  // connections on read, corrupted response headers, compute delays and
  // a one-shot worker stall — must be absorbed by the retry loop: every
  // request completes ok, and repeated answers for a key stay
  // byte-identical.
  struct InjectorReset {
    ~InjectorReset() { faults::injector().configure(faults::FaultPlan{}); }
  } reset;
  faults::FaultPlan plan;
  std::string plan_error;
  ASSERT_TRUE(faults::parse_plan(
      "seed=11,read_short:p=0.05,corrupt_header:p=0.03,delay:ms=2:p=0.5,"
      "worker_stall:after=2:ms=50",
      &plan, &plan_error))
      << plan_error;
  faults::injector().configure(plan);

  ServerConfig config;
  config.workers = 2;
  config.queue_depth = 64;
  with_server(config, "chaos", [](const std::string& path, Server&) {
    constexpr int kThreads = 4;
    constexpr int kRequestsPerThread = 40;
    constexpr int kPool = 6;
    std::vector<Request> pool;
    for (int s = 0; s < kPool; ++s) {
      Request request;
      request.instance = small_instance(200 + static_cast<unsigned>(s));
      pool.push_back(std::move(request));
    }

    std::mutex mu;
    std::map<int, std::string> expected;  // pool index -> first payload
    std::atomic<int> failures{0};
    std::atomic<int> mismatches{0};
    std::atomic<std::uint64_t> retries{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Endpoint endpoint;
        endpoint.socket_path = path;
        RetryPolicy policy;
        policy.max_retries = 12;
        policy.base_ms = 1.0;
        policy.cap_ms = 50.0;
        policy.attempt_timeout_ms = 2000.0;
        policy.jitter_seed = 0xc0ffeeULL + static_cast<unsigned>(t);
        RetryingClient client(endpoint, policy);
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const int index = (t + i) % kPool;
          Client::Reply reply;
          std::string error;
          if (!client.call(pool[static_cast<std::size_t>(index)], &reply,
                           &error) ||
              reply.status != Status::kOk) {
            failures.fetch_add(1);
            continue;
          }
          const std::lock_guard<std::mutex> lock(mu);
          const auto [it, inserted] =
              expected.emplace(index, reply.payload);
          if (!inserted && it->second != reply.payload) {
            mismatches.fetch_add(1);
          }
        }
        retries.fetch_add(client.retries());
      });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(failures.load(), 0)
        << "every request must eventually complete under chaos";
    EXPECT_EQ(mismatches.load(), 0)
        << "cache hits must stay byte-identical under chaos";
    EXPECT_GT(faults::injector().injected(), 0u)
        << "the fault plan never fired — the soak proved nothing";
    EXPECT_GT(retries.load(), 0u);
  });
}
#endif  // QBSS_FAULTS_OFF

TEST(Server, ClientShutdownFrameStopsTheServer) {
  ServerConfig config;
  config.workers = 1;
  const std::string path = socket_path("shutdown");
  config.socket_path = path;
  Server server(std::move(config));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect_unix(path, &error)) << error;
  ASSERT_TRUE(client.shutdown_server(&error)) << error;
  server.wait();  // returns because the frame initiated shutdown
  EXPECT_GE(server.responses(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qbss::svc
