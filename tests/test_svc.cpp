// Tests for qbss::svc: frame header round-trips, request payload
// serialize/parse round-trips and rejection paths, canonical cache keys,
// the sharded LRU result cache, and an end-to-end server over a /tmp
// Unix-domain socket (energy parity with a direct core run, cache-hit
// byte-identity, queue-full and deadline shedding, coalescing, and the
// manifest epilogue written at shutdown).
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_instances.hpp"
#include "io/format.hpp"
#include "obs/diff.hpp"
#include "qbss/bkpq.hpp"
#include "scheduling/schedule.hpp"

namespace qbss::svc {
namespace {

core::QInstance small_instance(std::uint64_t seed) {
  return gen::random_online(8, 10.0, 0.5, 4.0, seed);
}

/// A /tmp socket path unique to this process and test (sun_path caps
/// paths at ~107 bytes, so the build tree is not an option).
std::string socket_path(const char* tag) {
  return "/tmp/qbss-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

TEST(Protocol, HeaderRoundTrip) {
  FrameHeader header;
  header.status = Status::kShed;
  header.flags = kFlagCacheHit;
  header.payload_len = 12345;
  header.request_id = 0xfeedfacecafebeefULL;

  unsigned char wire[kHeaderSize];
  encode_header(header, wire);
  FrameHeader back;
  std::string error;
  ASSERT_TRUE(decode_header(wire, &back, &error)) << error;
  EXPECT_EQ(back.status, Status::kShed);
  EXPECT_EQ(back.flags, kFlagCacheHit);
  EXPECT_EQ(back.payload_len, 12345u);
  EXPECT_EQ(back.request_id, 0xfeedfacecafebeefULL);
}

TEST(Protocol, HeaderRejectsBadMagicAndOversize) {
  FrameHeader header;
  unsigned char wire[kHeaderSize];
  encode_header(header, wire);
  wire[0] ^= 0xff;  // corrupt the magic
  FrameHeader back;
  std::string error;
  EXPECT_FALSE(decode_header(wire, &back, &error));

  header.payload_len = kMaxPayload + 1;
  encode_header(header, wire);
  error.clear();
  EXPECT_FALSE(decode_header(wire, &back, &error));
  EXPECT_NE(error.find("payload"), std::string::npos);
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.algo = "crcd";
  request.alpha = 2.25;
  request.machines = 3;
  request.want_schedule = true;
  request.deadline_ms = 17.5;
  request.instance = small_instance(7);

  Request back;
  std::string error;
  ASSERT_TRUE(parse_request(serialize_request(request), &back, &error))
      << error;
  EXPECT_EQ(back.verb, Verb::kSolve);
  EXPECT_EQ(back.algo, "crcd");
  EXPECT_EQ(back.alpha, 2.25);
  EXPECT_EQ(back.machines, 3);
  EXPECT_TRUE(back.want_schedule);
  EXPECT_EQ(back.deadline_ms, 17.5);
  ASSERT_EQ(back.instance.size(), request.instance.size());
  for (std::size_t i = 0; i < back.instance.size(); ++i) {
    const auto& a = request.instance.jobs()[i];
    const auto& b = back.instance.jobs()[i];
    EXPECT_EQ(a.release, b.release);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.query_cost, b.query_cost);
    EXPECT_EQ(a.upper_bound, b.upper_bound);
    EXPECT_EQ(a.exact_load, b.exact_load);
  }
}

TEST(Protocol, ParseRequestRejectsMalformedPayloads) {
  Request out;
  std::string error;
  EXPECT_FALSE(parse_request("nonsense\n", &out, &error));

  // alpha outside (1, 100].
  EXPECT_FALSE(parse_request(
      "qbss-svc/1 solve\nalgo: bkpq\nalpha: 1\ninstance:\n0 1 0.1 1 1\n",
      &out, &error));
  EXPECT_NE(error.find("alpha"), std::string::npos);

  // Unknown field.
  EXPECT_FALSE(parse_request(
      "qbss-svc/1 solve\nbogus: 1\ninstance:\n0 1 0.1 1 1\n", &out,
      &error));

  // Missing instance section.
  EXPECT_FALSE(
      parse_request("qbss-svc/1 solve\nalgo: bkpq\n", &out, &error));
  EXPECT_NE(error.find("instance"), std::string::npos);

  // Instance errors carry the section-relative line number.
  EXPECT_FALSE(parse_request(
      "qbss-svc/1 solve\ninstance:\n0 1 0.1 1\n", &out, &error));
  EXPECT_NE(error.find("instance line 1"), std::string::npos);
}

TEST(Protocol, CacheKeySeparatesResultDeterminingFields) {
  Request request;
  request.instance = small_instance(3);
  const std::string base = cache_key(request);
  EXPECT_EQ(cache_key(request), base) << "key must be deterministic";

  Request other = request;
  other.algo = "crcd";
  EXPECT_NE(cache_key(other), base);

  other = request;
  other.alpha = request.alpha + 0.5;
  EXPECT_NE(cache_key(other), base);

  other = request;
  other.want_schedule = !request.want_schedule;
  EXPECT_NE(cache_key(other), base);

  other = request;
  other.instance = small_instance(4);
  EXPECT_NE(cache_key(other), base);

  // deadline_ms is delivery policy, not a result-determining field.
  other = request;
  other.deadline_ms = 99.0;
  EXPECT_EQ(cache_key(other), base);

  // machines only matters for the multi-machine policy.
  other = request;
  other.machines = request.machines + 1;
  EXPECT_EQ(cache_key(other), base);
  other.algo = "avrq_m";
  Request multi = request;
  multi.algo = "avrq_m";
  EXPECT_NE(cache_key(other), cache_key(multi));

  // -0.0 loads normalize to +0.0 (same value, same schedule).
  Request zero_a;
  zero_a.instance.add(0.0, 4.0, 0.5, 2.0, 0.0);
  Request zero_b;
  zero_b.instance.add(-0.0, 4.0, 0.5, 2.0, 0.0);
  EXPECT_EQ(cache_key(zero_a), cache_key(zero_b));
}

TEST(Protocol, SolveMatchesDirectRunAndIsDeterministic) {
  Request request;
  request.algo = "bkpq";
  request.alpha = 2.5;
  request.want_schedule = true;
  request.instance = small_instance(11);

  std::string payload;
  std::string error;
  ASSERT_TRUE(solve_request(request, &payload, &error)) << error;
  std::string again;
  ASSERT_TRUE(solve_request(request, &again, &error)) << error;
  EXPECT_EQ(payload, again) << "equal requests must render identically";

  SolveResult result;
  ASSERT_TRUE(parse_solve_result(payload, &result, &error)) << error;
  EXPECT_EQ(result.algo, "bkpq");
  EXPECT_TRUE(result.valid);
  const core::QbssRun direct = core::bkpq(request.instance);
  EXPECT_DOUBLE_EQ(result.energy, direct.energy(request.alpha));
  EXPECT_DOUBLE_EQ(result.max_speed, direct.max_speed());

  // The dumped schedule re-validates through the ordinary readers.
  ASSERT_FALSE(result.classical_text.empty());
  ASSERT_FALSE(result.schedule_text.empty());
  std::istringstream classical_in(result.classical_text);
  std::istringstream schedule_in(result.schedule_text);
  const io::Parsed<scheduling::Instance> classical =
      io::read_instance(classical_in);
  ASSERT_TRUE(classical) << classical.error.message;
  const io::Parsed<scheduling::Schedule> schedule =
      io::read_schedule(schedule_in, classical.value->size());
  ASSERT_TRUE(schedule) << schedule.error.message;
  EXPECT_TRUE(scheduling::validate(*classical.value, *schedule.value)
                  .feasible);
}

TEST(Protocol, SolveRejectsUnknownAlgoAndEmptyInstance) {
  Request request;
  request.algo = "no-such-policy";
  request.instance = small_instance(1);
  std::string payload;
  std::string error;
  EXPECT_FALSE(solve_request(request, &payload, &error));
  EXPECT_NE(error.find("algo"), std::string::npos);

  request.algo = "bkpq";
  request.instance = core::QInstance{};
  EXPECT_FALSE(solve_request(request, &payload, &error));
}

TEST(Cache, LruEvictsOldestAndRefreshesOnGet) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  cache.put("a", "1");
  cache.put("b", "2");
  std::string value;
  EXPECT_TRUE(cache.get("a", &value));  // refresh: "a" becomes MRU
  EXPECT_EQ(value, "1");
  cache.put("c", "3");  // evicts "b", the LRU entry
  EXPECT_FALSE(cache.get("b", &value));
  EXPECT_TRUE(cache.get("a", &value));
  EXPECT_TRUE(cache.get("c", &value));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  cache.put("a", "updated");
  EXPECT_TRUE(cache.get("a", &value));
  EXPECT_EQ(value, "updated");
  EXPECT_EQ(cache.size(), 2u) << "put of an existing key must not grow";
}

TEST(Cache, ShardedCapacityHoldsManyKeys) {
  ResultCache cache(/*capacity=*/64, /*shards=*/8);
  for (int i = 0; i < 64; ++i) {
    cache.put("key" + std::to_string(i), std::to_string(i));
  }
  std::size_t present = 0;
  std::string value;
  for (int i = 0; i < 64; ++i) {
    if (cache.get("key" + std::to_string(i), &value)) ++present;
  }
  // Per-shard LRU: uneven shard fill may evict a few, never most.
  EXPECT_GE(present, 48u);
}

/// Spins up a server on a fresh /tmp socket, runs `body(path)`, then
/// shuts down and returns the manifest path (which `body` may ignore).
template <typename Body>
void with_server(ServerConfig config, const char* tag, Body body) {
  const std::string path = socket_path(tag);
  config.socket_path = path;
  Server server(std::move(config));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  body(path, server);
  server.shutdown();
  server.wait();
  std::remove(path.c_str());
}

TEST(Server, SolvesCachesAndServesByteIdenticalResults) {
  ServerConfig config;
  config.workers = 2;
  const std::string manifest_path =
      "/tmp/qbss-test-" + std::to_string(::getpid()) + "-manifest.json";
  config.manifest_path = manifest_path;
  config.manifest_extra.emplace_back("command", "test");

  with_server(config, "solve", [](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;
    ASSERT_TRUE(client.ping(&error)) << error;

    Request request;
    request.algo = "bkpq";
    request.alpha = 3.0;
    request.instance = small_instance(21);

    Client::Reply first;
    ASSERT_TRUE(client.call(request, &first, &error)) << error;
    ASSERT_EQ(first.status, Status::kOk) << first.payload;
    EXPECT_FALSE(first.cache_hit);

    SolveResult result;
    ASSERT_TRUE(parse_solve_result(first.payload, &result, &error))
        << error;
    const core::QbssRun direct = core::bkpq(request.instance);
    EXPECT_DOUBLE_EQ(result.energy, direct.energy(request.alpha));

    // The same request from a different connection must be answered
    // from the cache, byte-identically.
    Client other;
    ASSERT_TRUE(other.connect_unix(path, &error)) << error;
    Client::Reply second;
    ASSERT_TRUE(other.call(request, &second, &error)) << error;
    ASSERT_EQ(second.status, Status::kOk);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(second.payload, first.payload);
  });

  // The shutdown epilogue must parse back through the manifest reader
  // (the same path `qbss obs-diff` uses) and record the extras.
  std::string load_error;
  const std::optional<obs::ManifestData> manifest =
      obs::load_manifest_file(manifest_path, &load_error);
  ASSERT_TRUE(manifest.has_value()) << load_error;
  std::ifstream raw_in(manifest_path);
  std::stringstream raw;
  raw << raw_in.rdbuf();
  EXPECT_NE(raw.str().find("\"command\""), std::string::npos);
  EXPECT_NE(raw.str().find("\"test\""), std::string::npos);
#ifndef QBSS_OBS_OFF
  EXPECT_GT(manifest->counters.count("svc.requests"), 0u);
  EXPECT_GT(manifest->counters.count("svc.cache.hit"), 0u);
#endif
  std::remove(manifest_path.c_str());
}

TEST(Server, MalformedPayloadGetsErrorStatusNotDisconnect) {
  ServerConfig config;
  config.workers = 1;
  with_server(config, "error", [](const std::string& path, Server&) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect_unix(path, &error)) << error;

    Request bad;
    bad.algo = "no-such-policy";
    bad.instance = small_instance(2);
    Client::Reply reply;
    ASSERT_TRUE(client.call(bad, &reply, &error)) << error;
    EXPECT_EQ(reply.status, Status::kError);
    EXPECT_NE(reply.payload.find("message:"), std::string::npos);

    // The connection survives; a good request still works.
    Request good;
    good.instance = small_instance(2);
    ASSERT_TRUE(client.call(good, &reply, &error)) << error;
    EXPECT_EQ(reply.status, Status::kOk);
  });
}

TEST(Server, QueueFullSheds) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  config.delay_ms = 60.0;  // hold the single worker busy
  with_server(config, "shed", [](const std::string& path, Server&) {
    // Distinct instances so neither the cache nor coalescing absorbs
    // the burst; more clients than worker+queue slots forces shedding.
    constexpr int kClients = 6;
    std::atomic<int> shed{0};
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect_unix(path, &error)) << error;
        Request request;
        request.instance = small_instance(100 + static_cast<unsigned>(c));
        Client::Reply reply;
        ASSERT_TRUE(client.call(request, &reply, &error)) << error;
        if (reply.status == Status::kShed) {
          shed.fetch_add(1);
          EXPECT_NE(reply.payload.find("queue_full"), std::string::npos);
        } else if (reply.status == Status::kOk) {
          ok.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_GT(shed.load(), 0) << "burst must overflow a depth-1 queue";
    EXPECT_GT(ok.load(), 0) << "admitted requests still complete";
  });
}

TEST(Server, ExpiredDeadlineSheds) {
  ServerConfig config;
  config.workers = 1;
  config.delay_ms = 80.0;
  with_server(config, "deadline", [](const std::string& path, Server&) {
    Client blocker;
    Client victim;
    std::string error;
    ASSERT_TRUE(blocker.connect_unix(path, &error)) << error;
    ASSERT_TRUE(victim.connect_unix(path, &error)) << error;

    // Occupy the single worker, then queue a request whose deadline
    // expires long before the worker frees up.
    Request slow;
    slow.instance = small_instance(61);
    Client::Reply slow_reply;
    std::thread blocker_thread([&] {
      ASSERT_TRUE(blocker.call(slow, &slow_reply, &error)) << error;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    Request urgent;
    urgent.instance = small_instance(62);
    urgent.deadline_ms = 1.0;
    Client::Reply reply;
    std::string victim_error;
    ASSERT_TRUE(victim.call(urgent, &reply, &victim_error))
        << victim_error;
    EXPECT_EQ(reply.status, Status::kShed);
    EXPECT_NE(reply.payload.find("deadline"), std::string::npos);
    blocker_thread.join();
    EXPECT_EQ(slow_reply.status, Status::kOk);
  });
}

TEST(Server, CoalescesIdenticalInflightRequests) {
  ServerConfig config;
  config.workers = 1;
  config.delay_ms = 60.0;
  config.queue_depth = 64;
  with_server(config, "coalesce", [](const std::string& path, Server&) {
    // Identical requests from several connections while the first is
    // still in flight: every reply must be ok and byte-identical even
    // though the queue only ever holds one task per key.
    constexpr int kClients = 4;
    Request request;
    request.instance = small_instance(77);
    std::vector<std::string> payloads(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect_unix(path, &error)) << error;
        Client::Reply reply;
        ASSERT_TRUE(client.call(request, &reply, &error)) << error;
        ASSERT_EQ(reply.status, Status::kOk);
        payloads[static_cast<std::size_t>(c)] = reply.payload;
      });
    }
    for (std::thread& t : threads) t.join();
    for (int c = 1; c < kClients; ++c) {
      EXPECT_EQ(payloads[static_cast<std::size_t>(c)], payloads[0]);
    }
  });
}

TEST(Server, ClientShutdownFrameStopsTheServer) {
  ServerConfig config;
  config.workers = 1;
  const std::string path = socket_path("shutdown");
  config.socket_path = path;
  Server server(std::move(config));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect_unix(path, &error)) << error;
  ASSERT_TRUE(client.shutdown_server(&error)) << error;
  server.wait();  // returns because the frame initiated shutdown
  EXPECT_GE(server.responses(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qbss::svc
