// Tests for the temperature substrate: the closed-form piece solution
// against numeric integration, steady states, cooling gaps, and the
// qualitative energy-vs-temperature tension the BKP paper describes.
#include "scheduling/temperature.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/xoshiro.hpp"
#include "scheduling/avr.hpp"
#include "scheduling/bkp.hpp"
#include "scheduling/yds.hpp"

namespace qbss::scheduling {
namespace {

TEST(Temperature, SteadyState) {
  EXPECT_DOUBLE_EQ(steady_state_temperature(2.0, 3.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(steady_state_temperature(0.0, 2.0, 1.0), 0.0);
}

TEST(Temperature, ConstantSpeedApproachesSteadyState) {
  const StepFunction f = StepFunction::constant({0.0, 100.0}, 1.5);
  const double alpha = 3.0;
  const double b = 2.0;
  const TemperatureTrace trace = simulate_temperature(f, alpha, b);
  const double steady = steady_state_temperature(1.5, alpha, b);
  EXPECT_NEAR(trace.final_temperature, steady, 1e-9);
  EXPECT_LE(trace.max_temperature, steady + 1e-12);
}

TEST(Temperature, MatchesNumericIntegration) {
  Xoshiro256 rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    StepFunction f;
    Time t = 0.0;
    for (int k = 0; k < 5; ++k) {
      const Time len = rng.uniform(0.2, 1.5);
      f.add_constant({t, t + len}, rng.uniform(0.0, 3.0));
      t += len + (rng.chance(0.3) ? rng.uniform(0.1, 0.5) : 0.0);
    }
    const double alpha = 2.5;
    const double b = rng.uniform(0.5, 3.0);
    const TemperatureTrace exact = simulate_temperature(f, alpha, b);

    // Forward-Euler reference on a fine grid.
    const Interval span = f.support();
    const int steps = 200000;
    const double dt = span.length() / steps;
    double temp = 0.0;
    double max_temp = 0.0;
    for (int i = 0; i < steps; ++i) {
      const Time probe = span.begin + (i + 0.5) * dt;
      const double s = f.value(probe);
      temp += dt * (std::pow(s, alpha) - b * temp);
      max_temp = std::max(max_temp, temp);
    }
    EXPECT_NEAR(exact.final_temperature, temp,
                1e-3 * std::max(1.0, temp))
        << "trial " << trial;
    EXPECT_NEAR(exact.max_temperature, max_temp,
                2e-3 * std::max(1.0, max_temp))
        << "trial " << trial;
  }
}

TEST(Temperature, IdleGapsCool) {
  StepFunction f;
  f.add_constant({0.0, 1.0}, 2.0);
  f.add_constant({5.0, 6.0}, 0.1);
  const TemperatureTrace trace = simulate_temperature(f, 2.0, 1.0);
  // The spike from the first piece is the global max; the gap cools.
  EXPECT_GT(trace.max_temperature, trace.final_temperature);
  EXPECT_LE(trace.max_at, 1.0 + 1e-12);
}

TEST(Temperature, HigherCoolingLowersPeak) {
  StepFunction f;
  f.add_constant({0.0, 2.0}, 1.0);
  f.add_constant({2.0, 3.0}, 3.0);
  double prev = kInf;
  for (const double b : {0.5, 1.0, 2.0, 4.0}) {
    const double peak = simulate_temperature(f, 3.0, b).max_temperature;
    EXPECT_LT(peak, prev);
    prev = peak;
  }
}

TEST(Temperature, SpikyProfileHotterThanFlatAtEqualEnergy) {
  // Same energy, different shapes: a flat profile runs cooler than a
  // bursty one — the core temperature-vs-energy tension.
  const double alpha = 3.0;
  const double b = 1.0;
  const StepFunction flat = StepFunction::constant({0.0, 4.0}, 1.0);
  StepFunction spiky;  // same energy 4: one piece at 4^(1/3) scaled...
  // energy_flat = 4 * 1 = 4; spiky: speed s over 1 unit: s^3 = 4.
  spiky.add_constant({0.0, 1.0}, std::cbrt(4.0));
  EXPECT_NEAR(flat.power_integral(alpha), spiky.power_integral(alpha),
              1e-12);
  EXPECT_GT(simulate_temperature(spiky, alpha, b).max_temperature,
            simulate_temperature(flat, alpha, b).max_temperature);
}

TEST(Temperature, YdsRunsCoolerThanAvrOnStackedLoads) {
  // AVR's stacking raises peaks; YDS smooths them. Same jobs, same total
  // work — YDS's max temperature should not exceed AVR's.
  Xoshiro256 rng(53);
  int yds_cooler = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    Instance inst;
    for (int j = 0; j < 8; ++j) {
      const Time r = rng.uniform(0.0, 5.0);
      inst.add(r, r + rng.uniform(0.5, 2.5), rng.uniform(0.2, 2.0));
    }
    const double peak_yds =
        simulate_temperature(yds(inst).speed(), 3.0, 1.0).max_temperature;
    const double peak_avr =
        simulate_temperature(avr(inst).speed(), 3.0, 1.0).max_temperature;
    if (peak_yds <= peak_avr + 1e-9) ++yds_cooler;
  }
  EXPECT_GE(yds_cooler, trials - 1);  // allow one stacking fluke
}

}  // namespace
}  // namespace qbss::scheduling
