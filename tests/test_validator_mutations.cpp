// Mutation tests for the validators: start from known-valid runs and
// corrupt them in targeted ways; every corruption must be rejected. A
// validator that accepts everything would silently green-light broken
// algorithms, so these tests guard the guards.
#include <gtest/gtest.h>

#include "gen/random_instances.hpp"
#include "qbss/avrq.hpp"
#include "qbss/bkpq.hpp"
#include "qbss/run.hpp"
#include "scheduling/avr.hpp"
#include "scheduling/multi/avr_m.hpp"
#include "scheduling/yds.hpp"

namespace qbss::core {
namespace {

QInstance small_instance() {
  QInstance inst;
  inst.add(0.0, 4.0, 0.5, 2.0, 1.0);
  inst.add(1.0, 5.0, 0.4, 1.5, 1.5);
  inst.add(0.5, 3.5, 1.4, 1.5, 0.2);
  return inst;
}

/// Rebuilds `run.schedule` with every rate scaled by `factor`.
scheduling::Schedule scaled_rates(const QbssRun& run, double factor) {
  scheduling::ScheduleBuilder b(run.expansion.classical.size());
  for (std::size_t i = 0; i < run.expansion.classical.size(); ++i) {
    const auto id = static_cast<scheduling::JobId>(i);
    b.add_rate(id, run.schedule.rate(id).scaled(factor));
  }
  return std::move(b).build();
}

TEST(RunMutations, BaselineIsValid) {
  const QInstance inst = small_instance();
  const QbssRun run = avrq(inst);
  EXPECT_TRUE(validate_run(inst, run).feasible);
}

TEST(RunMutations, UnderExecutionRejected) {
  const QInstance inst = small_instance();
  QbssRun run = avrq(inst);
  run.schedule = scaled_rates(run, 0.9);
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(RunMutations, OverExecutionRejected) {
  const QInstance inst = small_instance();
  QbssRun run = avrq(inst);
  run.schedule = scaled_rates(run, 1.1);
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(RunMutations, DroppedPartRejected) {
  const QInstance inst = small_instance();
  QbssRun run = avrq(inst);
  scheduling::ScheduleBuilder b(run.expansion.classical.size());
  for (std::size_t i = 1; i < run.expansion.classical.size(); ++i) {
    const auto id = static_cast<scheduling::JobId>(i);
    b.add_rate(id, run.schedule.rate(id));
  }
  run.schedule = std::move(b).build();
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(RunMutations, ExactBeforeQueryRejected) {
  // Forge an expansion whose exact part starts before the query ends.
  const QInstance inst = small_instance();
  QbssRun run;
  run.expansion.queried.assign(inst.size(), false);
  RevealGate gate(inst);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const auto q = static_cast<JobId>(i);
    const QJob& job = inst.job(q);
    run.expansion.queried[i] = true;
    const Time tau = job.release + 0.5 * job.window_length();
    run.expansion.classical.add(job.release, tau, job.query_cost);
    run.expansion.parts.push_back({q, PartKind::kQuery});
    gate.reveal(q);
    // BUG under test: exact part released before the query's deadline.
    run.expansion.classical.add(job.release, job.deadline,
                                gate.exact_load(q));
    run.expansion.parts.push_back({q, PartKind::kExact});
  }
  run.schedule = scheduling::avr(run.expansion.classical);
  run.nominal = run.schedule.speed();
  run.feasible = true;
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(RunMutations, WrongQueryLoadRejected) {
  const QInstance inst = small_instance();
  QbssRun run;
  run.expansion.queried.assign(inst.size(), false);
  RevealGate gate(inst);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const auto q = static_cast<JobId>(i);
    const QJob& job = inst.job(q);
    run.expansion.queried[i] = true;
    const Time tau = job.release + 0.5 * job.window_length();
    // BUG under test: query executes half the required load.
    run.expansion.classical.add(job.release, tau, 0.5 * job.query_cost);
    run.expansion.parts.push_back({q, PartKind::kQuery});
    gate.reveal(q);
    run.expansion.classical.add(tau, job.deadline, gate.exact_load(q));
    run.expansion.parts.push_back({q, PartKind::kExact});
  }
  run.schedule = scheduling::avr(run.expansion.classical);
  run.nominal = run.schedule.speed();
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(RunMutations, UnqueriedMustRunUpperBound) {
  const QInstance inst = small_instance();
  QbssRun run;
  run.expansion.queried.assign(inst.size(), false);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const auto q = static_cast<JobId>(i);
    const QJob& job = inst.job(q);
    // BUG under test: skipping the query but executing the exact load
    // (reading hidden information without paying for it).
    run.expansion.classical.add(job.release, job.deadline, job.exact_load);
    run.expansion.parts.push_back({q, PartKind::kFull});
  }
  run.schedule = scheduling::avr(run.expansion.classical);
  run.nominal = run.schedule.speed();
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(RunMutations, WindowEscapeRejected) {
  const QInstance inst = small_instance();
  QbssRun run;
  run.expansion.queried.assign(inst.size(), false);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const auto q = static_cast<JobId>(i);
    const QJob& job = inst.job(q);
    // BUG under test: window stretched past the deadline.
    run.expansion.classical.add(job.release, job.deadline + 1.0,
                                job.upper_bound);
    run.expansion.parts.push_back({q, PartKind::kFull});
  }
  run.schedule = scheduling::avr(run.expansion.classical);
  run.nominal = run.schedule.speed();
  EXPECT_FALSE(validate_run(inst, run).feasible);
}

TEST(MultiMutations, ParallelSelfExecutionRejected) {
  scheduling::Instance inst;
  inst.add(0.0, 2.0, 4.0);
  scheduling::MachineSchedule ms(2);
  ms.add({0, 0, {0.0, 2.0}, 1.0});
  ms.add({0, 1, {0.0, 2.0}, 1.0});  // same job simultaneously elsewhere
  EXPECT_FALSE(scheduling::validate_multi(inst, ms).feasible);
}

TEST(MultiMutations, ValidBaselinePasses) {
  scheduling::Instance inst;
  inst.add(0.0, 2.0, 4.0);
  inst.add(0.0, 2.0, 2.0);
  const scheduling::MachineSchedule ms = scheduling::avr_m(inst, 2);
  EXPECT_TRUE(scheduling::validate_multi(inst, ms).feasible);
}

TEST(ScheduleMutations, SpeedProfileMismatchRejected) {
  scheduling::Instance inst;
  inst.add(0.0, 2.0, 2.0);
  // Build a schedule whose stored speed disagrees with the rates by
  // constructing rates for a different work amount than validated.
  scheduling::ScheduleBuilder b(1);
  b.add_rate(0, {0.0, 2.0}, 1.0);
  const scheduling::Schedule good = std::move(b).build();
  ASSERT_TRUE(scheduling::validate(inst, good).feasible);

  scheduling::Instance other;
  other.add(0.0, 2.0, 3.0);  // expects 3 units, schedule provides 2
  EXPECT_FALSE(scheduling::validate(other, good).feasible);
}

}  // namespace
}  // namespace qbss::core
