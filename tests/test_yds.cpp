// Correctness of the YDS optimal offline algorithm: hand-computable
// instances, structural optimality properties, and cross-checks against
// the independent fluid-relaxation solver.
#include "scheduling/yds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "analysis/fluid_opt.hpp"
#include "common/xoshiro.hpp"
#include "gen/random_instances.hpp"
#include "qbss/transform.hpp"
#include "scheduling/avr.hpp"
#include "scheduling/bkp.hpp"
#include "scheduling/edf.hpp"
#include "scheduling/oa.hpp"

namespace qbss::scheduling {
namespace {

TEST(Yds, SingleJobRunsAtDensity) {
  Instance inst;
  inst.add(0.0, 2.0, 4.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.max_speed(), 2.0);
  EXPECT_DOUBLE_EQ(s.energy(3.0), 2.0 * 8.0);
}

TEST(Yds, CommonWindowJobsShareConstantSpeed) {
  Instance inst;
  inst.add(0.0, 4.0, 2.0);
  inst.add(0.0, 4.0, 6.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.max_speed(), 2.0);  // (2+6)/4
  // Constant speed: energy equals D * s^alpha.
  EXPECT_DOUBLE_EQ(s.energy(2.0), 4.0 * 4.0);
}

TEST(Yds, DenseInnerJobCreatesCriticalInterval) {
  // Textbook example: a dense job nested in a loose one.
  Instance inst;
  inst.add(0.0, 4.0, 2.0);  // loose
  inst.add(1.0, 2.0, 3.0);  // dense: forces speed 3 on (1, 2]
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.speed().value(1.5), 3.0);
  // Outside the critical interval, the loose job spreads over 3 time
  // units at speed 2/3.
  EXPECT_NEAR(s.speed().value(0.5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.speed().value(3.0), 2.0 / 3.0, 1e-12);
}

TEST(Yds, CommonReleaseStaircaseSpeeds) {
  // Common release, staggered deadlines -> non-increasing staircase.
  Instance inst;
  inst.add(0.0, 1.0, 3.0);
  inst.add(0.0, 2.0, 1.0);
  inst.add(0.0, 4.0, 1.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  const StepFunction& f = s.speed();
  // Intensities: (0,1]: 3; then 1 over (1,2]; then 0.5 over (2,4].
  EXPECT_DOUBLE_EQ(f.value(0.5), 3.0);
  EXPECT_DOUBLE_EQ(f.value(1.5), 1.0);
  EXPECT_DOUBLE_EQ(f.value(3.0), 0.5);
}

TEST(Yds, SpeedNonIncreasingForCommonRelease) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst;
    for (int j = 0; j < 8; ++j) {
      inst.add(0.0, rng.uniform(0.5, 8.0), rng.uniform(0.1, 4.0));
    }
    const Schedule s = yds(inst);
    ASSERT_TRUE(validate(inst, s).feasible);
    const auto& pieces = s.speed().pieces();
    for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
      EXPECT_GE(pieces[i].value, pieces[i + 1].value - 1e-9)
          << "YDS speed must be non-increasing under common release";
    }
  }
}

TEST(Yds, ZeroWorkJobsIgnored) {
  Instance inst;
  inst.add(0.0, 1.0, 0.0);
  inst.add(0.0, 2.0, 2.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.max_speed(), 1.0);
}

TEST(Yds, MatchesFluidRelaxationOnRandomInstances) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    Instance inst;
    const int n = 2 + static_cast<int>(rng.below(6));
    for (int j = 0; j < n; ++j) {
      const Time r = rng.uniform(0.0, 6.0);
      inst.add(r, r + rng.uniform(0.5, 4.0), rng.uniform(0.1, 3.0));
    }
    for (const double alpha : {1.5, 2.0, 3.0}) {
      const Energy e_yds = optimal_energy(inst, alpha);
      const Energy e_ref = analysis::fluid_optimal_energy(inst, alpha, 600);
      EXPECT_NEAR(e_yds / e_ref, 1.0, 1e-4)
          << "trial " << trial << " alpha " << alpha;
    }
  }
}

TEST(Yds, NeverWorseThanAnyHeuristic) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    Instance inst;
    const int n = 3 + static_cast<int>(rng.below(5));
    for (int j = 0; j < n; ++j) {
      const Time r = rng.uniform(0.0, 5.0);
      inst.add(r, r + rng.uniform(0.5, 3.0), rng.uniform(0.1, 2.0));
    }
    for (const double alpha : {2.0, 3.0}) {
      const Energy opt = optimal_energy(inst, alpha);
      EXPECT_LE(opt, avr(inst).energy(alpha) + 1e-9);
      EXPECT_LE(opt, optimal_available(inst).energy(alpha) + 1e-9);
      EXPECT_LE(opt, bkp(inst).nominal_energy(alpha) + 1e-9);
    }
  }
}

TEST(Yds, MaxSpeedIsMinimalFeasible) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    Instance inst;
    for (int j = 0; j < 5; ++j) {
      const Time r = rng.uniform(0.0, 4.0);
      inst.add(r, r + rng.uniform(0.5, 3.0), rng.uniform(0.1, 2.0));
    }
    const Speed s_star = optimal_max_speed(inst);
    // The whole instance is EDF-feasible at the YDS max speed...
    EXPECT_TRUE(edf_feasible(
        inst, StepFunction::constant({0.0, inst.horizon()}, s_star + 1e-9)));
    // ...but not below it.
    EXPECT_FALSE(edf_feasible(
        inst,
        StepFunction::constant({0.0, inst.horizon()}, s_star * 0.99)));
  }
}

TEST(Yds, OptimalityInvariantUnderTimeShift) {
  Instance a;
  a.add(0.0, 2.0, 1.0);
  a.add(1.0, 3.0, 2.0);
  Instance b;
  b.add(10.0, 12.0, 1.0);
  b.add(11.0, 13.0, 2.0);
  EXPECT_NEAR(optimal_energy(a, 2.5), optimal_energy(b, 2.5), 1e-9);
}

TEST(Yds, OptimalEnergyScalesAsWorkToTheAlpha) {
  Instance a;
  a.add(0.0, 2.0, 1.0);
  a.add(1.0, 3.0, 2.0);
  Instance b;
  b.add(0.0, 2.0, 3.0);
  b.add(1.0, 3.0, 6.0);
  const double alpha = 2.0;
  EXPECT_NEAR(optimal_energy(b, alpha),
              std::pow(3.0, alpha) * optimal_energy(a, alpha), 1e-9);
}

// --- Differential: the event-grid fast path vs the direct-scan oracle ---

/// Both solvers must produce feasible schedules of (essentially) equal
/// energy at every exponent; YDS optimality makes energy the right
/// invariant — tie-broken critical intervals may differ harmlessly.
void expect_same_optimum(const Instance& inst, const char* context) {
  const Schedule fast = yds(inst);
  const Schedule ref = yds_reference(inst);
  ASSERT_TRUE(validate(inst, fast).feasible) << context;
  ASSERT_TRUE(validate(inst, ref).feasible) << context;
  EXPECT_NEAR(fast.max_speed(), ref.max_speed(),
              1e-9 * std::max(1.0, ref.max_speed()))
      << context;
  for (const double alpha : {1.5, 2.0, 3.0}) {
    const Energy e_fast = fast.energy(alpha);
    const Energy e_ref = ref.energy(alpha);
    EXPECT_NEAR(e_fast, e_ref, 1e-9 * std::max(1.0, e_ref))
        << context << " alpha " << alpha;
  }
}

TEST(YdsDifferential, RandomOnlineInstances) {
  for (const int n : {2, 5, 9, 16, 31}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const core::QInstance q =
          gen::random_online(n, 10.0, 0.5, 4.0, 1000 * seed + 7);
      const Instance inst = core::clairvoyant_instance(q);
      expect_same_optimum(
          inst, ("random_online n=" + std::to_string(n)).c_str());
    }
  }
}

TEST(YdsDifferential, CommonDeadlineInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const core::QInstance q = gen::random_common_deadline(12, 8.0, seed);
    expect_same_optimum(core::clairvoyant_instance(q), "common_deadline");
  }
}

TEST(YdsDifferential, LaminarInstances) {
  // Chain-nested windows (every pair nested or disjoint) with random
  // sibling splits — the shape that maximizes the number of peel rounds.
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst;
    Time lo = 0.0, hi = 64.0;
    while (hi - lo > 0.5) {
      inst.add(lo, hi, rng.uniform(0.1, 3.0));
      const Time mid = lo + (hi - lo) * rng.uniform(0.25, 0.75);
      if (rng.below(2) == 0) {
        inst.add(lo, mid, rng.uniform(0.1, 2.0));  // disjoint sibling
        lo = mid;
      } else {
        hi = mid;
      }
    }
    expect_same_optimum(inst, "laminar");
  }
}

TEST(YdsDifferential, ZeroWorkJobsMixedIn) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst;
    for (int j = 0; j < 12; ++j) {
      const Time r = rng.uniform(0.0, 6.0);
      const Work w = (j % 3 == 0) ? 0.0 : rng.uniform(0.1, 2.0);
      inst.add(r, r + rng.uniform(0.5, 4.0), w);
    }
    expect_same_optimum(inst, "zero_work");
  }
}

TEST(YdsDifferential, DuplicateWindowsAndEndpointTies) {
  // Repeated releases/deadlines stress the event-grid dedup and rank
  // lookups; ties in intensity must resolve like the reference.
  Instance inst;
  inst.add(0.0, 4.0, 1.0);
  inst.add(0.0, 4.0, 2.0);
  inst.add(2.0, 4.0, 1.0);
  inst.add(0.0, 2.0, 1.0);
  inst.add(2.0, 6.0, 0.5);
  inst.add(2.0, 6.0, 0.5);
  expect_same_optimum(inst, "duplicate_windows");
}

TEST(Yds, DisjointWindowsScheduleIndependently) {
  Instance inst;
  inst.add(0.0, 1.0, 2.0);
  inst.add(5.0, 7.0, 2.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.speed().value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.speed().value(3.0), 0.0);
  EXPECT_DOUBLE_EQ(s.speed().value(6.0), 1.0);
}

}  // namespace
}  // namespace qbss::scheduling
