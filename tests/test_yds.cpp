// Correctness of the YDS optimal offline algorithm: hand-computable
// instances, structural optimality properties, and cross-checks against
// the independent fluid-relaxation solver.
#include "scheduling/yds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fluid_opt.hpp"
#include "common/xoshiro.hpp"
#include "scheduling/avr.hpp"
#include "scheduling/bkp.hpp"
#include "scheduling/edf.hpp"
#include "scheduling/oa.hpp"

namespace qbss::scheduling {
namespace {

TEST(Yds, SingleJobRunsAtDensity) {
  Instance inst;
  inst.add(0.0, 2.0, 4.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.max_speed(), 2.0);
  EXPECT_DOUBLE_EQ(s.energy(3.0), 2.0 * 8.0);
}

TEST(Yds, CommonWindowJobsShareConstantSpeed) {
  Instance inst;
  inst.add(0.0, 4.0, 2.0);
  inst.add(0.0, 4.0, 6.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.max_speed(), 2.0);  // (2+6)/4
  // Constant speed: energy equals D * s^alpha.
  EXPECT_DOUBLE_EQ(s.energy(2.0), 4.0 * 4.0);
}

TEST(Yds, DenseInnerJobCreatesCriticalInterval) {
  // Textbook example: a dense job nested in a loose one.
  Instance inst;
  inst.add(0.0, 4.0, 2.0);  // loose
  inst.add(1.0, 2.0, 3.0);  // dense: forces speed 3 on (1, 2]
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.speed().value(1.5), 3.0);
  // Outside the critical interval, the loose job spreads over 3 time
  // units at speed 2/3.
  EXPECT_NEAR(s.speed().value(0.5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.speed().value(3.0), 2.0 / 3.0, 1e-12);
}

TEST(Yds, CommonReleaseStaircaseSpeeds) {
  // Common release, staggered deadlines -> non-increasing staircase.
  Instance inst;
  inst.add(0.0, 1.0, 3.0);
  inst.add(0.0, 2.0, 1.0);
  inst.add(0.0, 4.0, 1.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  const StepFunction& f = s.speed();
  // Intensities: (0,1]: 3; then 1 over (1,2]; then 0.5 over (2,4].
  EXPECT_DOUBLE_EQ(f.value(0.5), 3.0);
  EXPECT_DOUBLE_EQ(f.value(1.5), 1.0);
  EXPECT_DOUBLE_EQ(f.value(3.0), 0.5);
}

TEST(Yds, SpeedNonIncreasingForCommonRelease) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst;
    for (int j = 0; j < 8; ++j) {
      inst.add(0.0, rng.uniform(0.5, 8.0), rng.uniform(0.1, 4.0));
    }
    const Schedule s = yds(inst);
    ASSERT_TRUE(validate(inst, s).feasible);
    const auto& pieces = s.speed().pieces();
    for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
      EXPECT_GE(pieces[i].value, pieces[i + 1].value - 1e-9)
          << "YDS speed must be non-increasing under common release";
    }
  }
}

TEST(Yds, ZeroWorkJobsIgnored) {
  Instance inst;
  inst.add(0.0, 1.0, 0.0);
  inst.add(0.0, 2.0, 2.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.max_speed(), 1.0);
}

TEST(Yds, MatchesFluidRelaxationOnRandomInstances) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    Instance inst;
    const int n = 2 + static_cast<int>(rng.below(6));
    for (int j = 0; j < n; ++j) {
      const Time r = rng.uniform(0.0, 6.0);
      inst.add(r, r + rng.uniform(0.5, 4.0), rng.uniform(0.1, 3.0));
    }
    for (const double alpha : {1.5, 2.0, 3.0}) {
      const Energy e_yds = optimal_energy(inst, alpha);
      const Energy e_ref = analysis::fluid_optimal_energy(inst, alpha, 600);
      EXPECT_NEAR(e_yds / e_ref, 1.0, 1e-4)
          << "trial " << trial << " alpha " << alpha;
    }
  }
}

TEST(Yds, NeverWorseThanAnyHeuristic) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    Instance inst;
    const int n = 3 + static_cast<int>(rng.below(5));
    for (int j = 0; j < n; ++j) {
      const Time r = rng.uniform(0.0, 5.0);
      inst.add(r, r + rng.uniform(0.5, 3.0), rng.uniform(0.1, 2.0));
    }
    for (const double alpha : {2.0, 3.0}) {
      const Energy opt = optimal_energy(inst, alpha);
      EXPECT_LE(opt, avr(inst).energy(alpha) + 1e-9);
      EXPECT_LE(opt, optimal_available(inst).energy(alpha) + 1e-9);
      EXPECT_LE(opt, bkp(inst).nominal_energy(alpha) + 1e-9);
    }
  }
}

TEST(Yds, MaxSpeedIsMinimalFeasible) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    Instance inst;
    for (int j = 0; j < 5; ++j) {
      const Time r = rng.uniform(0.0, 4.0);
      inst.add(r, r + rng.uniform(0.5, 3.0), rng.uniform(0.1, 2.0));
    }
    const Speed s_star = optimal_max_speed(inst);
    // The whole instance is EDF-feasible at the YDS max speed...
    EXPECT_TRUE(edf_feasible(
        inst, StepFunction::constant({0.0, inst.horizon()}, s_star + 1e-9)));
    // ...but not below it.
    EXPECT_FALSE(edf_feasible(
        inst,
        StepFunction::constant({0.0, inst.horizon()}, s_star * 0.99)));
  }
}

TEST(Yds, OptimalityInvariantUnderTimeShift) {
  Instance a;
  a.add(0.0, 2.0, 1.0);
  a.add(1.0, 3.0, 2.0);
  Instance b;
  b.add(10.0, 12.0, 1.0);
  b.add(11.0, 13.0, 2.0);
  EXPECT_NEAR(optimal_energy(a, 2.5), optimal_energy(b, 2.5), 1e-9);
}

TEST(Yds, OptimalEnergyScalesAsWorkToTheAlpha) {
  Instance a;
  a.add(0.0, 2.0, 1.0);
  a.add(1.0, 3.0, 2.0);
  Instance b;
  b.add(0.0, 2.0, 3.0);
  b.add(1.0, 3.0, 6.0);
  const double alpha = 2.0;
  EXPECT_NEAR(optimal_energy(b, alpha),
              std::pow(3.0, alpha) * optimal_energy(a, alpha), 1e-9);
}

TEST(Yds, DisjointWindowsScheduleIndependently) {
  Instance inst;
  inst.add(0.0, 1.0, 2.0);
  inst.add(5.0, 7.0, 2.0);
  const Schedule s = yds(inst);
  EXPECT_TRUE(validate(inst, s).feasible);
  EXPECT_DOUBLE_EQ(s.speed().value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.speed().value(3.0), 0.0);
  EXPECT_DOUBLE_EQ(s.speed().value(6.0), 1.0);
}

}  // namespace
}  // namespace qbss::scheduling
