// Minimal --key value option parsing shared by the qbss CLI tools.
#pragma once

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/parallel_for.hpp"
#include "obs/log.hpp"

namespace qbss::tools {

/// Parsed command line: `--key value` pairs (a `--flag` before another
/// option or the end maps to an empty value) plus bare positionals.
struct Options {
  std::map<std::string, std::string> values;
  std::vector<std::string> positional;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values.count(key) > 0;
  }
};

/// Scans argv[first..): `--name [value]` into values, the rest into
/// positional.
inline Options parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      opts.values[arg] = argv[++i];
    } else {
      opts.values[arg] = "";
    }
  }
  return opts;
}

/// Client-side robustness knobs shared by the tools that open qbss
/// serve connections (`--timeout-ms`, `--retries`; `--chaos` flips the
/// defaults from "fail fast" to values that ride out an aggressive
/// fault plan).
struct RetryOptions {
  double timeout_ms = 0.0;  ///< per-attempt socket timeout (0 = blocking)
  int retries = 0;          ///< extra attempts after the first
};

inline RetryOptions parse_retry_options(const Options& opts) {
  RetryOptions retry;
  const bool chaos = opts.flag("chaos");
  retry.timeout_ms = opts.number("timeout-ms", chaos ? 2000.0 : 0.0);
  retry.retries = static_cast<int>(opts.number("retries", chaos ? 8.0 : 0.0));
  return retry;
}

/// Applies the structured-log flags shared by the tools: the `QBSS_LOG`
/// environment variable (a level name), then `--log-level LVL` (wins
/// over the env) and `--log FILE` ("stderr" or "-" for stderr). Returns
/// 0 on success, 2 with a message on a malformed value. In a binary
/// built with -DQBSS_OBS=OFF any logging flag (including serve's
/// `--flight`) is rejected with exit code 2 instead of silently
/// recording nothing — mirroring how `--faults` behaves under
/// -DQBSS_FAULTS=OFF.
inline int apply_log_options(const Options& opts, const char* tool) {
#ifdef QBSS_OBS_OFF
  for (const char* name : {"log", "log-level", "flight"}) {
    if (opts.flag(name)) {
      std::fprintf(stderr,
                   "%s: --%s requested but this binary was built with "
                   "-DQBSS_OBS=OFF\n",
                   tool, name);
      return 2;
    }
  }
  return 0;
#else
  std::string error;
  if (!obs::configure_log_from_env(&error)) {
    std::fprintf(stderr, "%s: %s\n", tool, error.c_str());
    return 2;
  }
  if (const std::string text = opts.get("log-level", ""); !text.empty()) {
    obs::LogLevel level = obs::LogLevel::kInfo;
    if (!obs::parse_log_level(text, &level)) {
      std::fprintf(stderr,
                   "%s: bad --log-level \"%s\" (want debug|info|warn|"
                   "error|off)\n",
                   tool, text.c_str());
      return 2;
    }
    obs::set_log_level(level);
  }
  if (const std::string path = opts.get("log", ""); !path.empty()) {
    if (!obs::set_log_sink(path, &error)) {
      std::fprintf(stderr, "%s: %s\n", tool, error.c_str());
      return 2;
    }
  }
  return 0;
#endif
}

/// Applies the global `--threads N` override (wins over `QBSS_THREADS`);
/// non-numeric or non-positive values are ignored.
inline void apply_thread_override(const Options& opts) {
  if (!opts.flag("threads")) return;
  double n = 0.0;
  try {
    n = opts.number("threads", 0.0);
  } catch (...) {
    return;
  }
  if (n >= 1.0) {
    common::set_worker_count(static_cast<std::size_t>(n));
  }
}

}  // namespace qbss::tools
