// qbss — command-line front end for the library.
//
//   qbss gen  --family mixed|compression|optimizer|common|pow2
//             [--n N] [--seed S]                  write an instance to stdout
//   qbss run  --algo crcd|crp2d|crad|avrq|bkpq|oaq|avrq_m
//             [--machines M] [--alpha A] [--schedule] [--plot] [--json]
//             [--input FILE]                      run an algorithm on an
//                                                 instance (stdin or file)
//   qbss opt  [--alpha A] [--input FILE]          clairvoyant optimum
//   qbss stats [--input FILE]                     instance statistics
//   qbss bounds [--alpha A]                       print Table 1 bounds
//   qbss serve --socket PATH [--tcp PORT] ...     resident scheduling
//                                                 service (docs/SERVICE.md)
//   qbss cache stats|verify|compact --dir DIR     inspect/check/compact a
//                                                 serve --cache-dir segment
//                                                 store (docs/DURABILITY.md)
//   qbss route --topology FILE --socket PATH ...  consistent-hash router
//                                                 fronting a backend fleet
//                                                 (docs/ROUTING.md)
//   qbss scrape --socket PATH|--tcp PORT          fetch one stats frame
//             [--format json|prometheus]          from a running server
//   qbss top  --socket PATH|--tcp PORT            live per-interval rate
//             [--interval-ms X] [--count N]       table from stats frames
//   qbss obs-diff BASELINE.json CANDIDATE.json... diff two run manifests
//                                                 (or scraped stats
//                                                 frames) and exit
//                                                 nonzero on regression
//   qbss logs --file FILE [--level L] [--event E]  tail/filter a
//             [--trace-id ID] [--follow]           structured event log
//   qbss logs --postmortem FILE                    pretty-print a flight
//                                                  recorder dump
//
// Global flags: --trace FILE (Chrome trace of instrumented spans),
// --log FILE / --log-level LVL (structured event log sink + severity;
// QBSS_LOG env also sets the level), --quiet (suppress the [obs]
// counter/manifest report on stderr), --manifest FILE (write this run's
// manifest as JSON), --threads N (sweep thread count, overrides
// QBSS_THREADS).
//
// Example:
//   qbss gen --family compression --n 20 --seed 7 | qbss run --algo bkpq
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/stats.hpp"
#include "faults/faults.hpp"
#include "gen/compression.hpp"
#include "gen/optimizer.hpp"
#include "gen/random_instances.hpp"
#include "common/parallel_for.hpp"
#include "io/format.hpp"
#include "io/json.hpp"
#include "io/render.hpp"
#include "obs/diff.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "qbss/avrq.hpp"
#include "qbss/avrq_m.hpp"
#include "qbss/bkpq.hpp"
#include "qbss/clairvoyant.hpp"
#include "qbss/crad.hpp"
#include "qbss/crcd.hpp"
#include "qbss/crp2d.hpp"
#include "qbss/oaq.hpp"
#include "route/router.hpp"
#include "route/topology.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/store/segment_store.hpp"

#include "options.hpp"

namespace {

using namespace qbss;
using tools::Options;
using tools::parse_options;

int usage() {
  std::fprintf(stderr,
               "usage: qbss "
               "<gen|run|opt|stats|bounds|serve|cache|route|scrape|top|"
               "obs-diff|logs> [--options]\n"
               "  gen    --family mixed|compression|optimizer|common|pow2 "
               "[--n N] [--seed S]\n"
               "  run    --algo crcd|crp2d|crad|avrq|bkpq|oaq|avrq_m "
               "[--machines M] [--alpha A]\n"
               "         [--schedule] [--plot] [--json] [--input F]\n"
               "           --schedule  dump the fluid schedule (text)\n"
               "           --plot      ASCII-render the schedule\n"
               "           --json      dump the full run as JSON\n"
               "  opt    [--alpha A] [--input F]\n"
               "  stats  [--input F]\n"
               "  bounds [--alpha A]\n"
               "  serve  --socket PATH [--tcp PORT] [--workers N] "
               "[--queue-depth D]\n"
               "         [--cache N] [--shards S] [--batch K] "
               "[--delay-ms X]\n"
               "         [--read-timeout-ms X] [--write-timeout-ms X] "
               "[--drain-ms X]\n"
               "         [--degraded-ms X] [--faults PLAN] "
               "[--flight FILE]\n"
               "         [--stats-interval-ms X] [--stats-ring N] "
               "[--trace-sample N]\n"
               "         [--cache-dir DIR] [--cache-disk-mb N] "
               "[--sync none|interval|always]\n"
               "         [--sync-interval-ms X]\n"
               "           --cache-dir  persist the result cache to a "
               "checksummed\n"
               "                       segment store in DIR and warm-restart "
               "from it\n"
               "                       (docs/DURABILITY.md; default: "
               "memory only)\n"
               "           --cache-disk-mb  disk-tier byte budget in MiB "
               "(default 256);\n"
               "                       the oldest segment is dropped whole "
               "past it\n"
               "           --sync      write-behind fsync cadence "
               "(default interval)\n"
               "           --sync-interval-ms  cadence for --sync interval "
               "(default 100)\n"
               "           --stats-interval-ms  snapshot-ring cadence "
               "backing the stats\n"
               "                       verb's recent-rates window "
               "(default 1000; 0 = off)\n"
               "           --stats-ring  snapshots retained (default 8)\n"
               "           --trace-sample  record a span chain for "
               "requests whose\n"
               "                       trace id %% N == 0 (default 16; "
               "1 = all, 0 = none)\n"
               "           --faults    seeded fault plan (or QBSS_FAULTS "
               "env), e.g.\n"
               "                       "
               "'read_short:p=0.05,delay:ms=50,seed=7' — see\n"
               "                       docs/SERVICE.md for the grammar\n"
               "           --flight FILE  dump the event-log flight "
               "recorder here\n"
               "                       whenever a fault clause fires or a "
               "connection\n"
               "                       dies abnormally (and once more at "
               "shutdown)\n"
               "         resident scheduling service over a framed "
               "Unix-domain/TCP\n"
               "         protocol with result caching, coalescing and "
               "backpressure\n"
               "         (see docs/SERVICE.md; drive it with "
               "qbss-loadgen); writes\n"
               "         BENCH_svc.json at shutdown (--manifest "
               "overrides the path)\n"
               "  cache  stats|verify|compact --dir DIR [--segment-mb N]\n"
               "         offline tooling for a serve --cache-dir segment "
               "store (run\n"
               "         it against a stopped server; opening recovers the "
               "store\n"
               "         exactly like serve does — docs/DURABILITY.md)\n"
               "           stats    recovery summary, totals and a "
               "per-segment table\n"
               "           verify   re-read and checksum every live "
               "record; exit 1 if\n"
               "                    any fails\n"
               "           compact  rewrite live records into fresh "
               "segments and drop\n"
               "                    superseded/corrupt garbage (atomic "
               "manifest swap)\n"
               "  route  --topology FILE --socket PATH [--tcp PORT]\n"
               "         [--replicas R] [--hot-threshold N] "
               "[--health-interval-ms X]\n"
               "         [--breaker-failures N] [--breaker-open-ms X]\n"
               "         [--backend-timeout-ms X] [--backend-retries N] "
               "[--pool N]\n"
               "         [--read-timeout-ms X] [--write-timeout-ms X]\n"
               "         [--stats-interval-ms X] [--stats-ring N] "
               "[--faults PLAN]\n"
               "         [--flight FILE]\n"
               "         consistent-hash router fronting a backend fleet "
               "(see\n"
               "         docs/ROUTING.md); the topology file lists one\n"
               "         \"name addr [weight]\" line per backend; writes\n"
               "         BENCH_route.json at shutdown (--manifest "
               "overrides)\n"
               "           --replicas R       ring successors hot keys "
               "replicate to\n"
               "           --hot-threshold N  hits at which a key turns "
               "hot (0 = off)\n"
               "  scrape --socket PATH | --tcp PORT [--format "
               "json|prometheus]\n"
               "         [--timeout-ms X] [--backends]\n"
               "         fetch one stats frame from a running server or "
               "router to\n"
               "         stdout (prometheus = text exposition ready for a "
               "scraper)\n"
               "           --backends  render the router's per-backend "
               "table instead\n"
               "                       of the raw frame\n"
               "  top    --socket PATH | --tcp PORT [--interval-ms X] "
               "[--count N]\n"
               "         [--timeout-ms X] [--frames-out FILE]\n"
               "         [--expect-monotone] [--expect-active]\n"
               "         poll stats frames and print a live rate table "
               "(req/s, hit%%,\n"
               "         shed/s, latency percentiles); ctrl-C to stop; "
               "against a\n"
               "         router target also reports per-backend state "
               "changes\n"
               "           --count N          stop after N polls "
               "(N-1 table rows)\n"
               "           --frames-out FILE  append each raw JSON frame "
               "(one per line)\n"
               "           --expect-monotone  exit 1 if any lifetime "
               "counter decreases\n"
               "           --expect-active    exit 1 unless solve traffic "
               "was observed\n"
               "  obs-diff BASELINE.json CANDIDATE.json [CANDIDATE2.json "
               "...]\n"
               "         compare run manifests (see docs/OBSERVABILITY.md); "
               "exits 1 on regression\n"
               "         scraped stats frames are accepted too (their "
               "lifetime block diffs)\n"
               "         multiple candidates are reduced to their "
               "metric-wise median first\n"
               "           --ratio-tol X  timer ns/call ratio tolerance "
               "(default 1.5; <=0 off)\n"
               "           --count-tol X  counter ratio tolerance "
               "(default 2; <=0 off)\n"
               "           --hist-tol X   histogram percentile tolerance "
               "(default 1.5; <=0 off)\n"
               "           --min-ns N     skip timers under N total ns "
               "(default 1e6)\n"
               "           --json         emit the report as JSON instead "
               "of markdown\n"
               "  logs   --file FILE [--level debug|info|warn|error] "
               "[--event NAME]\n"
               "         [--trace-id ID] [--follow]\n"
               "         print the event-log lines matching every given "
               "filter\n"
               "           --follow       keep polling FILE for new "
               "events (tail -f)\n"
               "  logs   --postmortem FILE\n"
               "         pretty-print a flight-recorder dump: relative "
               "timestamps,\n"
               "         per-level tallies, aligned events "
               "(docs/OBSERVABILITY.md)\n"
               "global flags (any subcommand):\n"
               "  --trace FILE     write a Chrome trace (chrome://tracing /"
               " Perfetto) of instrumented spans\n"
               "  --log FILE       write structured NDJSON events here "
               "(stderr or -\n"
               "                   for stderr; docs/OBSERVABILITY.md has "
               "the schema)\n"
               "  --log-level LVL  sink severity floor: debug|info|warn|"
               "error|off\n"
               "                   (default info; the QBSS_LOG env var "
               "also sets it)\n"
               "  --quiet          suppress the [obs] counter/manifest report"
               " on stderr\n"
               "  --manifest FILE  write this run's manifest as JSON\n"
               "  --threads N      worker threads for parallel sweeps "
               "(overrides the\n"
               "                   QBSS_THREADS environment variable)\n");
  return 2;
}

core::QInstance load_instance(const Options& opts, bool& ok) {
  const std::string path = opts.get("input", "");
  io::Parsed<core::QInstance> parsed = [&] {
    if (path.empty()) return io::read_qinstance(std::cin);
    std::ifstream file(path);
    if (!file) {
      return io::Parsed<core::QInstance>{std::nullopt, {0, "cannot open"}};
    }
    return io::read_qinstance(file);
  }();
  if (!parsed) {
    std::fprintf(stderr, "parse error (line %d): %s\n", parsed.error.line,
                 parsed.error.message.c_str());
    ok = false;
    return core::QInstance{};
  }
  ok = true;
  return std::move(*parsed.value);
}

int cmd_gen(const Options& opts) {
  const std::string family = opts.get("family", "mixed");
  const int n = static_cast<int>(opts.number("n", 20));
  const auto seed = static_cast<std::uint64_t>(opts.number("seed", 1));
  core::QInstance inst;
  if (family == "mixed") {
    inst = gen::random_online(n, 10.0, 0.5, 4.0, seed);
  } else if (family == "common") {
    inst = gen::random_common_deadline(n, 8.0, seed);
  } else if (family == "pow2") {
    inst = gen::random_pow2_deadlines(n, 4, seed);
  } else if (family == "compression") {
    gen::CompressionConfig cfg;
    cfg.files = n;
    inst = gen::compression_stream(cfg, 12.0, 3.0, seed);
  } else if (family == "optimizer") {
    gen::OptimizerConfig cfg;
    cfg.jobs = n;
    inst = gen::optimizer_instance(cfg, seed);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }
  io::write_qinstance(std::cout, inst);
  return 0;
}

int cmd_run(const Options& opts) {
  QBSS_SPAN("cli.run");
  bool ok = false;
  const core::QInstance inst = load_instance(opts, ok);
  if (!ok) return 1;
  if (inst.empty()) {
    std::fprintf(stderr, "empty instance\n");
    return 1;
  }
  const double alpha = opts.number("alpha", 3.0);
  const std::string algo = opts.get("algo", "bkpq");

  if (algo == "avrq_m") {
    const int m = static_cast<int>(opts.number("machines", 4));
    const core::QbssMultiRun run = core::avrq_m(inst, m);
    const bool valid = core::validate_multi_run(inst, run).feasible;
    std::printf("algorithm: AVRQ(m), m = %d\n", m);
    std::printf("valid: %s\n", valid ? "yes" : "NO");
    std::printf("energy(alpha=%.2f): %.6g\n", alpha, run.energy(alpha));
    std::printf("max speed: %.6g\n", run.max_speed());
    if (opts.flag("plot")) {
      std::fputs(io::render_machine_schedule(run.schedule).c_str(), stdout);
    }
    return valid ? 0 : 1;
  }

  core::QbssRun run;
  if (algo == "crcd") {
    run = core::crcd(inst);
  } else if (algo == "crp2d") {
    run = core::crp2d(inst);
  } else if (algo == "crad") {
    run = core::crad(inst);
  } else if (algo == "avrq") {
    run = core::avrq(inst);
  } else if (algo == "bkpq") {
    run = core::bkpq(inst);
  } else if (algo == "oaq") {
    run = core::oaq(inst);
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }

  const bool valid = core::validate_run(inst, run).feasible;
  const Energy opt = core::clairvoyant_energy(inst, alpha);
  std::printf("algorithm: %s\n", algo.c_str());
  std::printf("valid: %s\n", valid ? "yes" : "NO");
  int queried = 0;
  for (const bool q : run.expansion.queried) queried += q ? 1 : 0;
  std::printf("queried: %d of %zu jobs\n", queried, inst.size());
  std::printf("energy(alpha=%.2f): %.6g  (ratio vs optimum: %.4f)\n", alpha,
              run.energy(alpha), run.energy(alpha) / opt);
  std::printf("max speed: %.6g\n", run.max_speed());
  if (opts.flag("schedule")) {
    io::write_schedule(std::cout, run.schedule, alpha);
  }
  if (opts.flag("plot")) {
    std::fputs(io::render_schedule(run.schedule).c_str(), stdout);
  }
  if (opts.flag("json")) {
    io::write_json_run(std::cout, run, alpha);
  }
  return valid ? 0 : 1;
}

int cmd_opt(const Options& opts) {
  QBSS_SPAN("cli.opt");
  bool ok = false;
  const core::QInstance inst = load_instance(opts, ok);
  if (!ok) return 1;
  const double alpha = opts.number("alpha", 3.0);
  const scheduling::Schedule opt = core::clairvoyant_schedule(inst);
  std::printf("clairvoyant optimum\n");
  std::printf("energy(alpha=%.2f): %.6g\n", alpha, opt.energy(alpha));
  std::printf("max speed: %.6g\n", opt.max_speed());
  int queried = 0;
  for (const core::QJob& j : inst.jobs()) queried += j.optimum_queries();
  std::printf("optimum queries %d of %zu jobs\n", queried, inst.size());
  return 0;
}

int cmd_stats(const Options& opts) {
  bool ok = false;
  const core::QInstance inst = load_instance(opts, ok);
  if (!ok) return 1;
  analysis::print_stats(analysis::instance_stats(inst));
  return 0;
}

int cmd_bounds(const Options& opts) {
  const double a = opts.number("alpha", 3.0);
  std::printf("Table 1 bounds at alpha = %.2f\n", a);
  std::printf("  offline LB: energy %.4f, speed %.4f\n",
              analysis::offline_energy_lower(a),
              analysis::offline_speed_lower());
  std::printf("  CRCD:   energy %.4f (refined %.4f), speed %.4f\n",
              analysis::crcd_energy_upper(a),
              analysis::crcd_energy_upper_refined(a),
              analysis::crcd_speed_upper());
  std::printf("  CRP2D:  energy %.4f\n", analysis::crp2d_energy_upper(a));
  std::printf("  CRAD:   energy %.4f\n", analysis::crad_energy_upper(a));
  std::printf("  AVRQ:   energy %.4f (LB %.4f)\n",
              analysis::avrq_energy_upper(a),
              analysis::avrq_energy_lower(a));
  std::printf("  BKPQ:   energy %.4f, speed %.4f (LB %.4f)\n",
              analysis::bkpq_energy_upper(a), analysis::bkpq_speed_upper(),
              analysis::bkpq_energy_lower(a));
  std::printf("  AVRQ(m): energy %.4f (LB %.4f)\n",
              analysis::avrq_m_energy_upper(a),
              analysis::avrq_m_energy_lower(a));
  return 0;
}

/// SIGINT/SIGTERM set this; the server's accept loop polls it.
std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true); }

int cmd_serve(const Options& opts) {
  svc::ServerConfig cfg;
  cfg.socket_path = opts.get("socket", "");
  cfg.tcp_port = static_cast<int>(opts.number("tcp", 0));
  cfg.workers = static_cast<std::size_t>(opts.number("workers", 2));
  cfg.queue_depth = static_cast<std::size_t>(opts.number("queue-depth", 64));
  cfg.cache_entries = static_cast<std::size_t>(opts.number("cache", 1024));
  cfg.cache_shards = static_cast<std::size_t>(opts.number("shards", 8));
  cfg.cache_dir = opts.get("cache-dir", "");
  cfg.cache_disk_mb = opts.number("cache-disk-mb", 256.0);
  cfg.cache_sync = opts.get("sync", "interval");
  cfg.cache_sync_interval_ms = opts.number("sync-interval-ms", 100.0);
  cfg.batch = static_cast<std::size_t>(opts.number("batch", 4));
  cfg.delay_ms = opts.number("delay-ms", 0.0);
  cfg.read_timeout_ms = opts.number("read-timeout-ms", 30000.0);
  cfg.write_timeout_ms = opts.number("write-timeout-ms", 10000.0);
  cfg.drain_ms = opts.number("drain-ms", 2000.0);
  cfg.degraded_window_ms = opts.number("degraded-ms", 0.0);
  cfg.stats_interval_ms = opts.number("stats-interval-ms", 1000.0);
  cfg.stats_ring = static_cast<std::size_t>(opts.number("stats-ring", 8));
  cfg.trace_sample =
      static_cast<std::uint64_t>(opts.number("trace-sample", 16));
  cfg.manifest_path = opts.get("manifest", "BENCH_svc.json");
  cfg.flight_path = opts.get("flight", "");
  cfg.external_stop = &g_stop_requested;
  if (cfg.socket_path.empty() && cfg.tcp_port == 0) {
    std::fprintf(stderr, "serve needs --socket PATH and/or --tcp PORT\n");
    return 2;
  }

  // The crash handler dumps the flight recorder before re-raising; point
  // it at the same file the server's automatic triggers use so a crash
  // and a fault trip tell one story.
  if (!cfg.flight_path.empty()) obs::set_flight_path(cfg.flight_path);
  obs::install_crash_handler();

  // Fault plan: --faults wins over the QBSS_FAULTS environment variable.
  std::string fault_plan = opts.get("faults", "");
  if (fault_plan.empty()) {
    if (const char* env = std::getenv("QBSS_FAULTS")) fault_plan = env;
  }
  if (!fault_plan.empty()) {
#ifdef QBSS_FAULTS_OFF
    std::fprintf(stderr,
                 "serve: fault plan \"%s\" requested but this binary was "
                 "built with -DQBSS_FAULTS=OFF\n",
                 fault_plan.c_str());
    return 2;
#else
    faults::FaultPlan plan;
    std::string plan_error;
    if (!faults::parse_plan(fault_plan, &plan, &plan_error)) {
      std::fprintf(stderr, "serve: bad fault plan: %s\n",
                   plan_error.c_str());
      return 2;
    }
    faults::injector().configure(plan);
    cfg.manifest_extra.emplace_back("fault_plan", fault_plan);
    std::fprintf(stderr, "[svc] fault injection active: %s\n",
                 fault_plan.c_str());
#endif
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  svc::Server server(cfg);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  if (!cfg.socket_path.empty()) {
    std::fprintf(stderr, "[svc] listening on %s\n", cfg.socket_path.c_str());
  }
  if (cfg.tcp_port != 0) {
    std::fprintf(stderr, "[svc] listening on 127.0.0.1:%d\n", cfg.tcp_port);
  }
  if (!cfg.cache_dir.empty()) {
    std::fprintf(stderr, "[svc] disk tier %s (budget %.0f MiB, sync %s)\n",
                 cfg.cache_dir.c_str(), cfg.cache_disk_mb,
                 cfg.cache_sync.c_str());
  }
  std::fprintf(stderr,
               "[svc] workers=%zu queue_depth=%zu cache=%zu ready\n",
               cfg.workers, cfg.queue_depth, cfg.cache_entries);
  server.wait();
  std::fprintf(stderr, "[svc] shut down after %llu responses\n",
               static_cast<unsigned long long>(server.responses()));
  return 0;
}

/// `qbss cache stats|verify|compact --dir DIR` — offline tooling over a
/// serve --cache-dir segment store. Opening runs the same recovery as
/// serve (torn-tail truncation, corrupt-record skipping, manifest
/// rebuild), so run it against a stopped server only. The byte budget is
/// unbounded here: tooling must never drop a segment the server would
/// have kept.
int cmd_cache(const Options& opts) {
  const std::string action =
      opts.positional.empty() ? std::string("stats") : opts.positional[0];
  if (action != "stats" && action != "verify" && action != "compact") {
    std::fprintf(stderr,
                 "cache: unknown action \"%s\" (want stats, verify or "
                 "compact)\n",
                 action.c_str());
    return 2;
  }
  const std::string dir = opts.get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "cache needs --dir DIR\n");
    return 2;
  }

  svc::store::StoreConfig cfg;
  cfg.dir = dir;
  cfg.budget_bytes = ~0ull;  // offline: never budget-drop a segment
  cfg.segment_bytes = static_cast<std::uint64_t>(
      std::max(1.0, opts.number("segment-mb", 8.0)) * 1024.0 * 1024.0);
  svc::store::SegmentStore store;
  svc::store::RecoveryStats recovery;
  std::string error;
  if (!store.open(cfg, &recovery, &error)) {
    std::fprintf(stderr, "cache: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "recovery: %zu segment(s), %zu live record(s), %zu corrupt "
      "skipped, %llu torn byte(s) truncated%s\n",
      recovery.segments, recovery.records, recovery.corrupt_skipped,
      static_cast<unsigned long long>(recovery.torn_tail_bytes),
      recovery.manifest_rebuilt ? ", manifest rebuilt" : "");

  int rc = 0;
  if (action == "stats") {
    const svc::store::StoreStats stats = store.stats();
    std::printf("dir: %s\n", store.dir().c_str());
    std::printf("segments: %zu\n", stats.segments);
    std::printf("live records: %zu\n", stats.live_records);
    std::printf("bytes: %llu\n",
                static_cast<unsigned long long>(stats.bytes));
    std::printf("%-16s %12s %12s %s\n", "segment", "bytes", "records",
                "state");
    for (const svc::store::SegmentInfo& seg : store.segments()) {
      std::printf("%-16s %12llu %12zu %s\n", seg.name.c_str(),
                  static_cast<unsigned long long>(seg.bytes),
                  seg.live_records, seg.active ? "active" : "sealed");
    }
  } else if (action == "verify") {
    std::vector<std::string> report;
    const std::size_t failures = store.verify(&report);
    for (const std::string& line : report) {
      std::printf("FAIL %s\n", line.c_str());
    }
    const svc::store::StoreStats stats = store.stats();
    std::printf("verify: %zu live record(s), %zu failure(s)\n",
                stats.live_records, failures);
    rc = failures == 0 ? 0 : 1;
  } else {  // compact
    const svc::store::StoreStats before = store.stats();
    if (!store.compact(&error)) {
      std::fprintf(stderr, "cache: compact failed: %s\n", error.c_str());
      store.close();
      return 1;
    }
    const svc::store::StoreStats after = store.stats();
    std::printf(
        "compact: %llu -> %llu bytes, %zu -> %zu segment(s), %zu live "
        "record(s)\n",
        static_cast<unsigned long long>(before.bytes),
        static_cast<unsigned long long>(after.bytes), before.segments,
        after.segments, after.live_records);
  }
  store.close();
  return rc;
}

int cmd_route(const Options& opts) {
  route::RouterConfig cfg;
  cfg.socket_path = opts.get("socket", "");
  cfg.tcp_port = static_cast<int>(opts.number("tcp", 0));
  if (cfg.socket_path.empty() && cfg.tcp_port == 0) {
    std::fprintf(stderr, "route needs --socket PATH and/or --tcp PORT\n");
    return 2;
  }
  const std::string topology_path = opts.get("topology", "");
  if (topology_path.empty()) {
    std::fprintf(stderr, "route needs --topology FILE\n");
    return 2;
  }
  std::string error;
  if (!route::load_topology_file(topology_path, &cfg.topology, &error)) {
    std::fprintf(stderr, "route: %s\n", error.c_str());
    return 2;
  }
  cfg.replicas = static_cast<std::size_t>(opts.number("replicas", 1));
  cfg.hot_threshold =
      static_cast<std::uint64_t>(opts.number("hot-threshold", 16));
  cfg.health_interval_ms = opts.number("health-interval-ms", 500.0);
  cfg.breaker_failures =
      static_cast<int>(opts.number("breaker-failures", 3));
  cfg.breaker_open_ms = opts.number("breaker-open-ms", 2000.0);
  cfg.backend_timeout_ms = opts.number("backend-timeout-ms", 5000.0);
  cfg.backend_retries = static_cast<int>(opts.number("backend-retries", 2));
  cfg.pool_capacity = static_cast<std::size_t>(opts.number("pool", 8));
  cfg.read_timeout_ms = opts.number("read-timeout-ms", 30000.0);
  cfg.write_timeout_ms = opts.number("write-timeout-ms", 10000.0);
  cfg.stats_interval_ms = opts.number("stats-interval-ms", 1000.0);
  cfg.stats_ring = static_cast<std::size_t>(opts.number("stats-ring", 8));
  cfg.manifest_path = opts.get("manifest", "BENCH_route.json");
  cfg.flight_path = opts.get("flight", "");
  cfg.external_stop = &g_stop_requested;
  cfg.manifest_extra.emplace_back("topology", topology_path);

  if (!cfg.flight_path.empty()) obs::set_flight_path(cfg.flight_path);
  obs::install_crash_handler();

  std::string fault_plan = opts.get("faults", "");
  if (fault_plan.empty()) {
    if (const char* env = std::getenv("QBSS_FAULTS")) fault_plan = env;
  }
  if (!fault_plan.empty()) {
#ifdef QBSS_FAULTS_OFF
    std::fprintf(stderr,
                 "route: fault plan \"%s\" requested but this binary was "
                 "built with -DQBSS_FAULTS=OFF\n",
                 fault_plan.c_str());
    return 2;
#else
    faults::FaultPlan plan;
    std::string plan_error;
    if (!faults::parse_plan(fault_plan, &plan, &plan_error)) {
      std::fprintf(stderr, "route: bad fault plan: %s\n",
                   plan_error.c_str());
      return 2;
    }
    faults::injector().configure(plan);
    cfg.manifest_extra.emplace_back("fault_plan", fault_plan);
    std::fprintf(stderr, "[route] fault injection active: %s\n",
                 fault_plan.c_str());
#endif
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  const std::string socket_path = cfg.socket_path;
  const int tcp_port = cfg.tcp_port;
  const std::size_t fleet = cfg.topology.backends.size();
  route::Router router(std::move(cfg));
  if (!router.start(&error)) {
    std::fprintf(stderr, "route: %s\n", error.c_str());
    return 1;
  }
  if (!socket_path.empty()) {
    std::fprintf(stderr, "[route] listening on %s\n", socket_path.c_str());
  }
  if (tcp_port != 0) {
    std::fprintf(stderr, "[route] listening on 127.0.0.1:%d\n", tcp_port);
  }
  std::fprintf(stderr, "[route] fronting %zu backend(s) from %s\n", fleet,
               topology_path.c_str());
  router.wait();
  std::fprintf(stderr, "[route] shut down after %llu responses\n",
               static_cast<unsigned long long>(router.responses()));
  return 0;
}

/// Parses the --socket/--tcp pair shared by scrape and top. False (with
/// a message) when neither is given.
bool stats_endpoint(const Options& opts, const char* command,
                    svc::Endpoint* endpoint) {
  endpoint->socket_path = opts.get("socket", "");
  endpoint->tcp_port = static_cast<int>(opts.number("tcp", 0));
  if (endpoint->socket_path.empty() && endpoint->tcp_port == 0) {
    std::fprintf(stderr, "%s needs --socket PATH or --tcp PORT\n", command);
    return false;
  }
  return true;
}

int cmd_scrape(const Options& opts) {
  svc::Endpoint endpoint;
  if (!stats_endpoint(opts, "scrape", &endpoint)) return 2;
  const std::string format = opts.get("format", "json");
  if (format != "json" && format != "prometheus") {
    std::fprintf(stderr, "scrape: --format must be json or prometheus\n");
    return 2;
  }
  svc::Client client;
  client.set_timeout_ms(opts.number("timeout-ms", 5000.0));
  std::string error;
  if (!client.connect(endpoint, &error)) {
    std::fprintf(stderr, "scrape: %s\n", error.c_str());
    return 1;
  }
  svc::Client::Reply reply;
  const bool backends = opts.flag("backends");
  if (!client.stats(backends ? "json" : format, &reply, &error)) {
    std::fprintf(stderr, "scrape: %s\n", error.c_str());
    return 1;
  }
  if (backends) {
    // Render the router's per-backend extras ("backend.<name>" keys) as
    // a table; a plain server frame has none.
    const std::optional<obs::StatsData> frame =
        obs::parse_stats_json(reply.payload, &error);
    if (!frame) {
      std::fprintf(stderr, "scrape: bad stats frame: %s\n", error.c_str());
      return 1;
    }
    std::size_t printed = 0;
    for (const auto& [key, value] : frame->extra) {
      if (key.rfind("backend.", 0) != 0) continue;
      std::printf("%-12s %s\n", key.c_str() + 8, value.c_str());
      ++printed;
    }
    if (printed == 0) {
      std::fprintf(stderr,
                   "scrape: no per-backend stats in the frame (not a "
                   "router target?)\n");
      return 1;
    }
    return 0;
  }
  std::fwrite(reply.payload.data(), 1, reply.payload.size(), stdout);
  return 0;
}

int cmd_top(const Options& opts) {
  svc::Endpoint endpoint;
  if (!stats_endpoint(opts, "top", &endpoint)) return 2;
  const double interval_ms = opts.number("interval-ms", 1000.0);
  const int count = static_cast<int>(opts.number("count", 0));
  const bool expect_monotone = opts.flag("expect-monotone");
  const bool expect_active = opts.flag("expect-active");

  std::ofstream frames;
  if (const std::string path = opts.get("frames-out", ""); !path.empty()) {
    frames.open(path);
    if (!frames) {
      std::fprintf(stderr, "top: cannot write %s\n", path.c_str());
      return 1;
    }
  }

  svc::Client client;
  client.set_timeout_ms(opts.number("timeout-ms", 5000.0));
  std::string error;
  if (!client.connect(endpoint, &error)) {
    std::fprintf(stderr, "top: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  const auto counter = [](const std::map<std::string, double>& table,
                          const char* name) {
    const auto it = table.find(name);
    return it == table.end() ? 0.0 : it->second;
  };
  const auto extra_or = [](const std::map<std::string, std::string>& table,
                           const char* name,
                           const char* fallback) -> const char* {
    const auto it = table.find(name);
    return it == table.end() ? fallback : it->second.c_str();
  };
  // Solve traffic excludes the frames top itself generates (stats) and
  // pings, so req/s here matches what the loadgen reports. A router
  // target counts under route.* instead of svc.*; summing both keeps
  // one code path (a process is either a server or a router, so one
  // family is always zero).
  const auto requests = [&](const std::map<std::string, double>& t) {
    return counter(t, "svc.requests") + counter(t, "route.requests");
  };
  const auto solve_traffic = [&](const std::map<std::string, double>& t) {
    return requests(t) - counter(t, "svc.pings") -
           counter(t, "route.pings") - counter(t, "svc.stats.requests") -
           counter(t, "route.stats.requests");
  };
  const auto hit_total = [&](const std::map<std::string, double>& t) {
    return counter(t, "svc.hit.zero_copy") + counter(t, "route.hit");
  };
  const auto shed_total = [](const std::map<std::string, double>& table) {
    double total = 0.0;
    for (const auto& [name, value] : table) {
      if (name.rfind("svc.shed.", 0) == 0 ||
          name.rfind("route.shed.", 0) == 0) {
        total += value;
      }
    }
    return total;
  };

  bool have_prev = false;
  obs::StatsData prev;
  bool monotone_ok = true;
  bool saw_active = false;
  int rows = 0;
  // Router targets carry per-backend extras; report each one on connect
  // and again whenever its rendered state changes (a kill/restart shows
  // up as two lines).
  std::map<std::string, std::string> backend_state;
  for (int poll = 0; count == 0 || poll < count; ++poll) {
    if (g_stop_requested.load()) break;
    if (poll > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          interval_ms));
      if (g_stop_requested.load()) break;
    }
    svc::Client::Reply reply;
    if (!client.stats("json", &reply, &error)) {
      // One reconnect: the server may have reaped an idle connection.
      if (!client.connect(endpoint, &error) ||
          !client.stats("json", &reply, &error)) {
        std::fprintf(stderr, "top: %s\n", error.c_str());
        return 1;
      }
    }
    if (frames.is_open()) frames << reply.payload << std::flush;
    const std::optional<obs::StatsData> frame =
        obs::parse_stats_json(reply.payload, &error);
    if (!frame) {
      std::fprintf(stderr, "top: bad stats frame: %s\n", error.c_str());
      return 1;
    }
    if (!have_prev) {
      if (std::string(extra_or(frame->extra, "role", "")) == "route") {
        std::fprintf(stderr,
                     "[top] connected to router: uptime=%.1fs backends=%s "
                     "replicas=%s hot_keys=%s\n",
                     frame->uptime_seconds,
                     extra_or(frame->extra, "backends", "?"),
                     extra_or(frame->extra, "replicas", "?"),
                     extra_or(frame->extra, "hot_keys", "?"));
      } else {
        std::fprintf(
            stderr,
            "[top] connected: uptime=%.1fs workers=%s queue_depth=%s\n",
            frame->uptime_seconds, extra_or(frame->extra, "workers", "?"),
            extra_or(frame->extra, "queue_depth", "?"));
      }
    } else {
      for (const auto& [name, value] : prev.lifetime.counters) {
        if (counter(frame->lifetime.counters, name.c_str()) < value) {
          std::fprintf(stderr, "[top] counter %s went backwards\n",
                       name.c_str());
          monotone_ok = false;
        }
      }
      const double dt = frame->uptime_seconds - prev.uptime_seconds;
      const double seconds = dt > 0.0 ? dt : 1.0;
      const double reqs = requests(frame->lifetime.counters) -
                          requests(prev.lifetime.counters);
      const double solves =
          solve_traffic(frame->lifetime.counters) -
          solve_traffic(prev.lifetime.counters);
      const double hits = hit_total(frame->lifetime.counters) -
                          hit_total(prev.lifetime.counters);
      const double sheds = shed_total(frame->lifetime.counters) -
                           shed_total(prev.lifetime.counters);
      if (solves > 0.0) saw_active = true;

      obs::HistogramSummary latency;
      auto it = frame->window.histograms.find("svc.latency_us");
      if (it == frame->window.histograms.end()) {
        it = frame->window.histograms.find("route.latency_us");
      }
      if (it != frame->window.histograms.end()) latency = it->second;
      if (rows % 20 == 0) {
        std::printf("%8s %9s %9s %6s %8s %9s %9s %6s %5s\n", "up(s)",
                    "req/s", "solve/s", "hit%", "shed/s", "p50(us)",
                    "p99(us)", "queued", "degr");
      }
      std::printf("%8.1f %9.1f %9.1f %5.1f%% %8.1f %9.1f %9.1f %6s %5s\n",
                  frame->uptime_seconds, reqs / seconds, solves / seconds,
                  solves > 0.0 ? 100.0 * hits / solves : 0.0,
                  sheds / seconds, latency.count != 0 ? latency.p50 : 0.0,
                  latency.count != 0 ? latency.p99 : 0.0,
                  extra_or(frame->extra, "queued_now", "?"),
                  extra_or(frame->extra, "degraded", "?"));
      std::fflush(stdout);
      ++rows;
    }
    // Per-backend lines: full detail on connect, then only breaker-state
    // edges (forwarded counts move every poll and would drown the table).
    for (const auto& [key, value] : frame->extra) {
      if (key.rfind("backend.", 0) != 0) continue;
      std::string state = value;
      if (const std::size_t pos = value.find("state=");
          pos != std::string::npos) {
        const std::size_t end = value.find(' ', pos);
        state = value.substr(pos, end == std::string::npos
                                      ? std::string::npos
                                      : end - pos);
      }
      auto [it_state, inserted] = backend_state.try_emplace(key, state);
      if (inserted) {
        std::fprintf(stderr, "[top] %s: %s\n", key.c_str(), value.c_str());
      } else if (it_state->second != state) {
        std::fprintf(stderr, "[top] %s: %s -> %s\n", key.c_str(),
                     it_state->second.c_str(), state.c_str());
        it_state->second = state;
      }
    }
    prev = *frame;
    have_prev = true;
  }

  if (have_prev) {
    std::fprintf(
        stderr,
        "[top] final: uptime=%.1fs requests=%.0f solves=%.0f hits=%.0f "
        "shed=%.0f errors=%.0f\n",
        prev.uptime_seconds, requests(prev.lifetime.counters),
        solve_traffic(prev.lifetime.counters),
        hit_total(prev.lifetime.counters),
        shed_total(prev.lifetime.counters),
        counter(prev.lifetime.counters, "svc.errors") +
            counter(prev.lifetime.counters, "route.errors"));
  }
  int rc = 0;
  if (expect_monotone && !monotone_ok) {
    std::fprintf(stderr, "top: a lifetime counter decreased\n");
    rc = 1;
  }
  if (expect_active && !saw_active) {
    std::fprintf(stderr, "top: no solve traffic observed\n");
    rc = 1;
  }
  return rc;
}

int cmd_obs_diff(const Options& opts) {
  if (opts.positional.size() < 2) {
    std::fprintf(stderr,
                 "obs-diff needs a baseline and at least one candidate "
                 "manifest\n");
    return usage();
  }

  std::string error;
  const std::optional<obs::ManifestData> baseline =
      obs::load_manifest_file(opts.positional[0], &error);
  if (!baseline) {
    std::fprintf(stderr, "obs-diff: %s\n", error.c_str());
    return 2;
  }
  std::vector<obs::ManifestData> candidates;
  for (std::size_t i = 1; i < opts.positional.size(); ++i) {
    std::optional<obs::ManifestData> candidate =
        obs::load_manifest_file(opts.positional[i], &error);
    if (!candidate) {
      std::fprintf(stderr, "obs-diff: %s\n", error.c_str());
      return 2;
    }
    candidates.push_back(std::move(*candidate));
  }

  obs::DiffOptions options;
  options.timer_ratio_tol = opts.number("ratio-tol", options.timer_ratio_tol);
  options.counter_ratio_tol =
      opts.number("count-tol", options.counter_ratio_tol);
  options.hist_ratio_tol = opts.number("hist-tol", options.hist_ratio_tol);
  options.min_total_ns = opts.number("min-ns", options.min_total_ns);

  const obs::DiffReport report =
      obs::diff_manifests(*baseline, obs::median_of(candidates), options);
  if (opts.flag("json")) {
    obs::write_json_report(std::cout, report);
  } else {
    obs::write_markdown_report(std::cout, report);
  }
  return report.ok() ? 0 : 1;
}

/// The `qbss logs` filter set: every given filter must match.
struct LogFilter {
  obs::LogLevel min_level = obs::LogLevel::kDebug;
  std::string event;
  bool have_trace = false;
  std::uint64_t trace = 0;

  [[nodiscard]] bool matches(const obs::ParsedLogLine& line) const {
    if (line.level < min_level) return false;
    if (!event.empty() && line.event != event) return false;
    if (have_trace &&
        std::strtoull(line.trace_id.c_str(), nullptr, 0) != trace) {
      return false;
    }
    return true;
  }
};

/// `qbss logs --postmortem`: renders a flight-recorder dump (or any
/// event-log file) for humans — relative milliseconds from the first
/// event, per-level tallies, aligned event names, args as key=value.
int render_postmortem(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "logs: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<obs::ParsedLogLine> events;
  std::string line;
  std::uint64_t skipped = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::ParsedLogLine parsed;
    if (!obs::parse_log_line(line, &parsed)) {
      ++skipped;
      continue;
    }
    events.push_back(std::move(parsed));
  }
  if (events.empty()) {
    std::fprintf(stderr, "logs: no parsable events in %s\n", path.c_str());
    return 1;
  }
  // Dumps are merged timestamp-ordered already; re-sort anyway so a
  // hand-concatenated file still renders as one timeline.
  std::stable_sort(events.begin(), events.end(),
                   [](const obs::ParsedLogLine& a,
                      const obs::ParsedLogLine& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  const std::uint64_t t0 = events.front().ts_ns;
  std::size_t by_level[4] = {0, 0, 0, 0};
  std::set<std::int64_t> threads;
  std::size_t event_width = 0;
  for (const obs::ParsedLogLine& e : events) {
    const auto index = static_cast<std::size_t>(e.level);
    if (index < 4) ++by_level[index];
    threads.insert(e.thread);
    event_width = std::max(event_width, e.event.size());
  }
  std::printf("postmortem: %s\n", path.c_str());
  std::printf(
      "  %zu events over %.3f ms on %zu threads "
      "(%zu debug, %zu info, %zu warn, %zu error)\n",
      events.size(),
      static_cast<double>(events.back().ts_ns - t0) / 1e6, threads.size(),
      by_level[0], by_level[1], by_level[2], by_level[3]);
  if (skipped != 0) {
    std::printf("  (%llu unparsable line(s) skipped)\n",
                static_cast<unsigned long long>(skipped));
  }
  for (const obs::ParsedLogLine& e : events) {
    std::printf("  +%10.3fms %-5s %-*s",
                static_cast<double>(e.ts_ns - t0) / 1e6,
                obs::level_name(e.level), static_cast<int>(event_width),
                e.event.c_str());
    if (!e.trace_id.empty() && e.trace_id != "0x0") {
      std::printf(" trace=%s", e.trace_id.c_str());
    }
    std::printf(" thr=%lld", static_cast<long long>(e.thread));
    for (const auto& [key, value] : e.args) {
      std::printf(" %s=%s", key.c_str(), value.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_logs(const Options& opts) {
  if (const std::string path = opts.get("postmortem", ""); !path.empty()) {
    return render_postmortem(path);
  }
  std::string path = opts.get("file", "");
  if (path.empty() && !opts.positional.empty()) path = opts.positional[0];
  if (path.empty()) {
    std::fprintf(stderr,
                 "logs needs --file FILE (or --postmortem FILE)\n");
    return 2;
  }

  LogFilter filter;
  if (const std::string text = opts.get("level", ""); !text.empty()) {
    if (!obs::parse_log_level(text, &filter.min_level)) {
      std::fprintf(stderr,
                   "logs: bad --level \"%s\" (want debug|info|warn|"
                   "error)\n",
                   text.c_str());
      return 2;
    }
  }
  filter.event = opts.get("event", "");
  if (const std::string id = opts.get("trace-id", ""); !id.empty()) {
    filter.have_trace = true;
    filter.trace = std::strtoull(id.c_str(), nullptr, 0);
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "logs: cannot open %s\n", path.c_str());
    return 1;
  }
  const bool follow = opts.flag("follow");
  if (follow) {
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
  }
  std::uint64_t skipped = 0;
  std::string line;
  for (;;) {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      obs::ParsedLogLine parsed;
      if (!obs::parse_log_line(line, &parsed)) {
        ++skipped;
        continue;
      }
      if (!filter.matches(parsed)) continue;
      std::fputs(line.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    if (!follow || g_stop_requested.load()) break;
    // tail -f: the writer appends whole lines, so clearing eof and
    // re-reading from the current offset picks them up.
    if (in.eof()) in.clear();
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  if (skipped != 0 && !opts.flag("quiet")) {
    std::fprintf(stderr, "[logs] skipped %llu unparsable line(s)\n",
                 static_cast<unsigned long long>(skipped));
  }
  return 0;
}

/// The [obs] report: a one-line manifest summary plus the final counter
/// and histogram snapshots, on stderr so piped stdout output stays clean.
/// With --manifest FILE the same manifest is also written as JSON —
/// except for `serve` and `route`, whose Server/Router already wrote a
/// richer one (config + response counts) to the same path at shutdown.
void report(const std::string& command, const Options& opts) {
  obs::Manifest manifest = obs::current_manifest();
  manifest.threads = common::worker_count();
  manifest.extra.emplace_back("command", command);
  if (!opts.flag("quiet")) {
    std::fprintf(stderr,
                 "[obs] manifest: sha=%s compiler=\"%s\" threads=%zu "
                 "wall=%.3fs obs=%s\n",
                 manifest.git_sha.c_str(), manifest.compiler.c_str(),
                 manifest.threads, manifest.wall_seconds,
                 manifest.obs_enabled ? "on" : "off");
    for (const auto& [name, value] : manifest.counters) {
      std::fprintf(stderr, "[obs] counter %-36s %llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    }
    for (const auto& [name, h] : manifest.histograms) {
      std::fprintf(stderr,
                   "[obs] hist    %-36s n=%llu min=%.4g max=%.4g p50=%.4g "
                   "p90=%.4g p99=%.4g\n",
                   name.c_str(), static_cast<unsigned long long>(h.count),
                   h.min, h.max, h.p50, h.p90, h.p99);
    }
  }
  if (command == "serve" || command == "route") return;
  if (const std::string path = opts.get("manifest", ""); !path.empty()) {
    if (std::ofstream out(path); out) {
      io::write_json_manifest(out, manifest);
    } else {
      std::fprintf(stderr, "[obs] cannot write manifest to %s\n",
                   path.c_str());
    }
  }
}

int dispatch(const std::string& command, const Options& opts) {
  if (command == "gen") return cmd_gen(opts);
  if (command == "run") return cmd_run(opts);
  if (command == "opt") return cmd_opt(opts);
  if (command == "stats") return cmd_stats(opts);
  if (command == "bounds") return cmd_bounds(opts);
  if (command == "serve") return cmd_serve(opts);
  if (command == "cache") return cmd_cache(opts);
  if (command == "route") return cmd_route(opts);
  if (command == "scrape") return cmd_scrape(opts);
  if (command == "top") return cmd_top(opts);
  if (command == "obs-diff") return cmd_obs_diff(opts);
  if (command == "logs") return cmd_logs(opts);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Options opts = parse_options(argc, argv, 2);
  if (const std::string trace = opts.get("trace", ""); !trace.empty()) {
    obs::set_trace_path(trace);
  }
  if (const int rc = tools::apply_log_options(opts, "qbss"); rc != 0) {
    return rc;
  }
  tools::apply_thread_override(opts);
  const int rc = dispatch(command, opts);
  report(command, opts);
  obs::flush_trace();
  obs::flush_logs();
  return rc;
}
