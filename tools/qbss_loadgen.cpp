// qbss-loadgen — open/closed-loop load generator for `qbss serve`.
//
//   qbss-loadgen --socket PATH [--connections C] [--requests N]
//                [--targets A,B,C] [--zipf S]
//                [--qps Q --duration S] [--family F] [--n J] [--seeds K]
//                [--algo A] [--alpha X] [--deadline-ms D] [--validate]
//                [--timeout-ms T] [--retries R] [--chaos]
//                [--expect-no-shed] [--expect-shed] [--expect-retries]
//                [--shutdown]
//
// Closed loop (default): C connections each issue N back-to-back
// requests drawn round-robin from a pool of K generated instances —
// K smaller than the request count makes repeats, which the server
// answers from its result cache. Paced (open) loop: --qps Q spreads
// sends across connections at an aggregate target rate for --duration
// seconds. Every ok response is compared byte-for-byte against the
// first response seen for the same canonical key (cached and uncached
// results must be identical); --validate additionally requests the
// schedule dump and re-validates it through io::read_schedule and the
// scheduling validator. Reports throughput and p50/p90/p99 latency from
// an obs::Histogram; exit status reflects failures and the --expect-*
// assertions (the CI soak job relies on both).
//
// Every connection drives a svc::RetryingClient, so --timeout-ms and
// --retries turn transport failures (a server running under a
// QBSS_FAULTS plan drops connections, corrupts headers and stalls) into
// retries instead of errors; --chaos flips the retry defaults to values
// that ride out an aggressive fault plan, and --expect-retries gates a
// chaos run on the faults actually having fired.
//
// --targets A,B,C spreads the connections round-robin across several
// endpoints (each in the `unix:PATH` / `host:port` grammar of
// svc::parse_endpoint) — servers or routers alike. --zipf S swaps the
// uniform round-robin key mix for a Zipf(S) draw over the pool, so a
// few keys dominate; that is the knob that exercises a router's hot-key
// replication (docs/ROUTING.md).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/real.hpp"
#include "gen/compression.hpp"
#include "gen/optimizer.hpp"
#include "gen/random_instances.hpp"
#include "io/format.hpp"
#include "io/json.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "scheduling/schedule.hpp"
#include "svc/client.hpp"
#include "svc/retry.hpp"

#include "options.hpp"

namespace {

using namespace qbss;
using tools::Options;
using Clock = std::chrono::steady_clock;

bool wait_for_server(const svc::Endpoint& endpoint, std::string* error) {
  // The server may still be binding when we start (CI launches it in the
  // background); retry for a few seconds before giving up.
  for (int attempt = 0; attempt < 50; ++attempt) {
    svc::Client probe;
    if (probe.connect(endpoint, error)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

core::QInstance make_instance(const std::string& family, int n,
                              std::uint64_t seed) {
  if (family == "common") return gen::random_common_deadline(n, 8.0, seed);
  if (family == "pow2") return gen::random_pow2_deadlines(n, 4, seed);
  if (family == "compression") {
    gen::CompressionConfig cfg;
    cfg.files = n;
    return gen::compression_stream(cfg, 12.0, 3.0, seed);
  }
  if (family == "optimizer") {
    gen::OptimizerConfig cfg;
    cfg.jobs = n;
    return gen::optimizer_instance(cfg, seed);
  }
  return gen::random_online(n, 10.0, 0.5, 4.0, seed);
}

/// Shared run state: the request pool, the expected-payload table and
/// the failure tallies every connection thread feeds.
struct RunState {
  std::vector<svc::Request> pool;
  std::vector<std::string> keys;  ///< cache key per pool entry
  double alpha = 3.0;
  bool validate = false;
  /// Non-empty under --zipf S: CDF over the pool, p(i) proportional to
  /// 1/(i+1)^S. Empty = uniform round-robin.
  std::vector<double> zipf_cdf;

  std::atomic<std::size_t> next_index{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> disk_hits{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> transport_failures{0};
  std::atomic<std::uint64_t> compared{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> validated{0};
  std::atomic<std::uint64_t> invalid{0};

  std::mutex expected_mu;
  std::map<std::string, std::string> expected;  ///< key -> first payload
};

/// Checks one ok-payload: byte-identity against the first payload seen
/// for this key, and (with --validate) schedule re-validation.
void check_response(RunState& state, std::size_t pool_index,
                    const svc::Client::Reply& reply) {
  const std::string& key = state.keys[pool_index];
  {
    const std::lock_guard<std::mutex> lock(state.expected_mu);
    const auto [it, inserted] = state.expected.emplace(key, reply.payload);
    if (!inserted) {
      state.compared.fetch_add(1);
      if (it->second != reply.payload) {
        state.mismatches.fetch_add(1);
        QBSS_COUNT("loadgen.mismatches");
      }
    }
  }
  if (!state.validate) return;

  svc::SolveResult result;
  std::string error;
  bool good = svc::parse_solve_result(reply.payload, &result, &error) &&
              result.valid && !result.classical_text.empty() &&
              !result.schedule_text.empty();
  if (good) {
    std::istringstream classical_in(result.classical_text);
    std::istringstream schedule_in(result.schedule_text);
    const io::Parsed<scheduling::Instance> classical =
        io::read_instance(classical_in);
    good = static_cast<bool>(classical);
    if (good) {
      const io::Parsed<scheduling::Schedule> schedule =
          io::read_schedule(schedule_in, classical.value->size());
      good = static_cast<bool>(schedule) &&
             scheduling::validate(*classical.value, *schedule.value)
                 .feasible &&
             approx_eq(schedule.value->energy(state.alpha), result.energy,
                       1e-6);
    }
  }
  state.validated.fetch_add(1);
  if (!good) {
    state.invalid.fetch_add(1);
    QBSS_COUNT("loadgen.invalid");
  }
}

std::uint64_t splitmix64(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Picks the next pool index: global round-robin by default, a Zipf
/// draw from the per-thread RNG under --zipf.
std::size_t pick_index(RunState& state, std::uint64_t* rng) {
  if (state.zipf_cdf.empty()) {
    return state.next_index.fetch_add(1) % state.pool.size();
  }
  const double u =
      static_cast<double>(splitmix64(rng) >> 11) * 0x1.0p-53;
  const auto it =
      std::lower_bound(state.zipf_cdf.begin(), state.zipf_cdf.end(), u);
  return std::min(
      static_cast<std::size_t>(it - state.zipf_cdf.begin()),
      state.pool.size() - 1);
}

void issue_one(RunState& state, svc::RetryingClient& client,
               std::uint64_t* rng) {
  const std::size_t index = pick_index(state, rng);
  const Clock::time_point start = Clock::now();
  svc::Client::Reply reply;
  std::string error;
  state.sent.fetch_add(1);
  QBSS_COUNT("loadgen.sent");
  if (!client.call(state.pool[index], &reply, &error)) {
    state.transport_failures.fetch_add(1);
    QBSS_COUNT("loadgen.transport_failures");
    return;
  }
  const double latency_us =
      std::chrono::duration<double, std::micro>(Clock::now() - start)
          .count();
  QBSS_HIST("loadgen.latency_us", latency_us);
  switch (reply.status) {
    case svc::Status::kOk:
      state.ok.fetch_add(1);
      QBSS_COUNT("loadgen.ok");
      if (reply.cache_hit) {
        state.cache_hits.fetch_add(1);
        QBSS_COUNT("loadgen.cache_hits");
      }
      if (reply.disk_hit) {
        state.disk_hits.fetch_add(1);
        QBSS_COUNT("loadgen.disk_hits");
      }
      check_response(state, index, reply);
      break;
    case svc::Status::kShed:
      state.shed.fetch_add(1);
      QBSS_COUNT("loadgen.shed");
      break;
    case svc::Status::kError:
      state.errors.fetch_add(1);
      QBSS_COUNT("loadgen.errors");
      break;
  }
}

/// Closed loop: `requests` back-to-back calls.
void closed_loop(RunState& state, svc::RetryingClient& client,
                 std::size_t requests, std::uint64_t rng_seed) {
  std::uint64_t rng = rng_seed;
  for (std::size_t i = 0; i < requests; ++i) {
    issue_one(state, client, &rng);
  }
}

/// Paced loop: one call every `interval` (catching up if a response
/// arrived late), until `stop_at`.
void paced_loop(RunState& state, svc::RetryingClient& client,
                std::chrono::duration<double> interval,
                Clock::time_point stop_at, std::uint64_t rng_seed) {
  std::uint64_t rng = rng_seed;
  Clock::time_point next = Clock::now();
  while (Clock::now() < stop_at) {
    std::this_thread::sleep_until(next);
    if (Clock::now() >= stop_at) break;
    issue_one(state, client, &rng);
    next += std::chrono::duration_cast<Clock::duration>(interval);
    if (const Clock::time_point now = Clock::now(); next < now) next = now;
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: qbss-loadgen (--socket PATH | --tcp PORT | --targets "
      "A,B,C) [--options]\n"
      "  --targets A,B,C   spread connections round-robin across several\n"
      "                    endpoints (unix:PATH or host:port each); "
      "overrides\n"
      "                    --socket/--tcp\n"
      "  --connections C   concurrent connections (default 4)\n"
      "  --requests N      closed loop: requests per connection "
      "(default 50)\n"
      "  --qps Q           paced loop: aggregate requests/second "
      "(default off)\n"
      "  --duration S      paced loop length in seconds (default 5)\n"
      "  --family F        mixed|common|pow2|compression|optimizer "
      "(default mixed)\n"
      "  --n J             jobs per generated instance (default 12)\n"
      "  --seeds K         distinct instances in the pool (default 8; "
      "repeats\n"
      "                    drive the server's result cache)\n"
      "  --zipf S          draw pool keys Zipf(S)-skewed instead of "
      "round-robin\n"
      "                    (0 = uniform; ~1 makes a few keys dominate, "
      "driving a\n"
      "                    router's hot-key replication)\n"
      "  --algo A          crcd|crp2d|crad|avrq|bkpq|oaq|avrq_m|opt "
      "(default bkpq)\n"
      "  --alpha X         power exponent (default 3)\n"
      "  --machines M      machines for avrq_m (default 4)\n"
      "  --deadline-ms D   per-request queue deadline\n"
      "  --validate        request schedule dumps and re-validate them\n"
      "  --timeout-ms T    per-attempt socket timeout (default 0 = none;\n"
      "                    2000 under --chaos)\n"
      "  --retries R       retries per request after the first attempt\n"
      "                    (default 0; 8 under --chaos)\n"
      "  --chaos           retry defaults for a server under QBSS_FAULTS\n"
      "  --log FILE        write structured NDJSON events (retry.* and\n"
      "                    loadgen decisions) to FILE; stderr or - for "
      "stderr\n"
      "  --log-level LVL   sink severity floor: debug|info|warn|error|off\n"
      "                    (default info; the QBSS_LOG env var also sets "
      "it)\n"
      "  --expect-no-shed  exit 1 if any request was shed\n"
      "  --expect-shed     exit 1 if no request was shed\n"
      "  --expect-cache-hits  exit 1 if no response came from the cache\n"
      "  --expect-disk-hits [N]  exit 1 unless >= N responses came from "
      "the\n"
      "                    server's on-disk cache tier (default 1; the "
      "warm-\n"
      "                    restart soak gates on this)\n"
      "  --expect-retries  exit 1 if no request needed a retry\n"
      "  --expect-qps Q    exit 1 if achieved throughput < Q req/s\n"
      "  --progress MS     print a one-line throughput/latency/retry\n"
      "                    summary to stderr every MS milliseconds\n"
      "  --shutdown        send a shutdown frame when done\n"
      "  --manifest FILE   write the loadgen manifest as JSON\n"
      "  --quiet           suppress the summary report\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = tools::parse_options(argc, argv, 1);
  if (const int rc = tools::apply_log_options(opts, "qbss-loadgen");
      rc != 0) {
    return rc;
  }
  tools::apply_thread_override(opts);

  std::vector<svc::Endpoint> endpoints;
  if (const std::string targets = opts.get("targets", "");
      !targets.empty()) {
    std::stringstream list(targets);
    std::string item;
    while (std::getline(list, item, ',')) {
      if (item.empty()) continue;
      svc::Endpoint parsed;
      std::string error;
      if (!svc::parse_endpoint(item, &parsed, &error)) {
        std::fprintf(stderr, "qbss-loadgen: --targets: %s\n",
                     error.c_str());
        return 2;
      }
      endpoints.push_back(std::move(parsed));
    }
  }
  if (endpoints.empty()) {
    svc::Endpoint endpoint;
    endpoint.socket_path = opts.get("socket", "");
    endpoint.tcp_port = static_cast<int>(opts.number("tcp", 0));
    if (endpoint.socket_path.empty() && endpoint.tcp_port == 0) {
      return usage();
    }
    endpoints.push_back(std::move(endpoint));
  }
  const tools::RetryOptions retry = tools::parse_retry_options(opts);

  const std::size_t connections =
      static_cast<std::size_t>(opts.number("connections", 4));
  const std::size_t requests =
      static_cast<std::size_t>(opts.number("requests", 50));
  const double qps = opts.number("qps", 0.0);
  const double duration = opts.number("duration", 5.0);
  const std::string family = opts.get("family", "mixed");
  const int jobs = static_cast<int>(opts.number("n", 12));
  const std::size_t seeds =
      static_cast<std::size_t>(opts.number("seeds", 8));

  RunState state;
  state.alpha = opts.number("alpha", 3.0);
  state.validate = opts.flag("validate");
  for (std::size_t s = 0; s < std::max<std::size_t>(seeds, 1); ++s) {
    svc::Request request;
    request.algo = opts.get("algo", "bkpq");
    request.alpha = state.alpha;
    request.machines = static_cast<int>(opts.number("machines", 4));
    request.want_schedule = state.validate;
    request.deadline_ms = opts.number("deadline-ms", 0.0);
    request.instance = make_instance(family, jobs, s + 1);
    state.keys.push_back(svc::cache_key(request));
    state.pool.push_back(std::move(request));
  }
  const double zipf_s = opts.number("zipf", 0.0);
  if (zipf_s > 0.0) {
    double total = 0.0;
    state.zipf_cdf.reserve(state.pool.size());
    for (std::size_t i = 0; i < state.pool.size(); ++i) {
      total += std::pow(static_cast<double>(i + 1), -zipf_s);
      state.zipf_cdf.push_back(total);
    }
    for (double& p : state.zipf_cdf) p /= total;
  }

  for (const svc::Endpoint& endpoint : endpoints) {
    std::string error;
    if (!wait_for_server(endpoint, &error)) {
      std::fprintf(stderr, "qbss-loadgen: %s: %s\n",
                   svc::endpoint_to_string(endpoint).c_str(),
                   error.c_str());
      return 1;
    }
  }
  std::vector<std::unique_ptr<svc::RetryingClient>> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    svc::RetryPolicy policy;
    policy.max_retries = retry.retries;
    policy.attempt_timeout_ms = retry.timeout_ms;
    policy.jitter_seed = 0x10adULL + c;  // decorrelate across connections
    clients.push_back(std::make_unique<svc::RetryingClient>(
        endpoints[c % endpoints.size()], policy));
  }

  // --progress: a reporter thread prints one summary line per tick,
  // sourced from registry snapshot deltas — the same machinery behind
  // the server's stats verb, so rates and windowed percentiles here and
  // in `qbss top` agree by construction.
  std::atomic<bool> progress_stop{false};
  std::thread progress_thread;
  if (const double progress_ms = opts.number("progress", 0.0);
      progress_ms > 0.0) {
    progress_thread = std::thread([&progress_stop, progress_ms] {
      obs::Snapshot prev = obs::capture_snapshot(true);
      while (!progress_stop.load()) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(progress_ms));
        const obs::Snapshot now = obs::capture_snapshot(true);
        const obs::SnapshotDelta d = obs::delta(prev, now);
        obs::HistogramSummary lat;
        if (const obs::HistogramSummary* h =
                d.histogram("loadgen.latency_us")) {
          lat = *h;
        }
        std::fprintf(
            stderr,
            "[loadgen] t=%.1fs %.1f req/s ok %llu hit %llu shed %llu "
            "err %llu retry %llu p50=%.1fus p99=%.1fus\n",
            now.uptime_seconds, d.rate("loadgen.sent"),
            static_cast<unsigned long long>(d.counter("loadgen.ok")),
            static_cast<unsigned long long>(
                d.counter("loadgen.cache_hits")),
            static_cast<unsigned long long>(d.counter("loadgen.shed")),
            static_cast<unsigned long long>(
                d.counter("loadgen.errors") +
                d.counter("loadgen.transport_failures")),
            static_cast<unsigned long long>(
                d.counter("svc.retry.retries")),
            lat.count != 0 ? lat.p50 : 0.0, lat.count != 0 ? lat.p99 : 0.0);
        prev = now;
      }
    });
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    if (qps > 0.0) {
      const std::chrono::duration<double> interval(
          static_cast<double>(connections) / qps);
      const Clock::time_point stop_at =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(duration));
      threads.emplace_back([&state, &clients, c, interval, stop_at] {
        paced_loop(state, *clients[c], interval, stop_at,
                   0x21f5ULL + c * 0x9e3779b9ULL);
      });
    } else {
      threads.emplace_back([&state, &clients, c, requests] {
        closed_loop(state, *clients[c], requests,
                    0x21f5ULL + c * 0x9e3779b9ULL);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (progress_thread.joinable()) {
    progress_stop.store(true);
    progress_thread.join();
  }

  if (opts.flag("shutdown")) {
    // The shutdown frame rides the retry loop too: a fault plan that
    // eats it must not leave the server running (CI would hang on it).
    // With --targets every endpoint gets one (note a router forwards
    // nothing here — shutdown stops the router itself).
    for (std::size_t e = 0; e < endpoints.size(); ++e) {
      std::string error;
      std::unique_ptr<svc::RetryingClient> spare;
      svc::RetryingClient* client;
      if (e < connections) {
        client = clients[e].get();
      } else {
        svc::RetryPolicy policy;
        policy.max_retries = retry.retries;
        policy.attempt_timeout_ms = retry.timeout_ms;
        spare = std::make_unique<svc::RetryingClient>(endpoints[e], policy);
        client = spare.get();
      }
      if (!client->shutdown_server(&error)) {
        std::fprintf(stderr, "qbss-loadgen: shutdown %s: %s\n",
                     svc::endpoint_to_string(endpoints[e]).c_str(),
                     error.c_str());
      }
    }
  }

  std::uint64_t retried = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t exhausted = 0;
  std::string exhausted_error;
  for (const auto& client : clients) {
    retried += client->retries();
    reconnects += client->reconnects();
    exhausted += client->exhausted();
    // The connection-level summary keeps the *final* typed error of its
    // most recent exhausted call; surface one of them so a failed chaos
    // run names the fault that actually spent the budget.
    if (exhausted_error.empty() && !client->last_error().empty()) {
      exhausted_error = client->last_error();
    }
  }

  const obs::HistogramSummary latency =
      obs::registry().histogram("loadgen.latency_us").summary();
  const std::uint64_t sent = state.sent.load();
  const double achieved_qps =
      seconds > 0.0 ? static_cast<double>(sent) / seconds : 0.0;
  if (!opts.flag("quiet")) {
    std::printf("loadgen: %llu requests in %.3fs (achieved %.1f req/s), "
                "%zu connections, pool of %zu instances\n",
                static_cast<unsigned long long>(sent), seconds,
                achieved_qps, connections, state.pool.size());
    std::printf("  ok %llu (cache hits %llu, disk hits %llu), shed %llu, "
                "errors %llu, transport failures %llu\n",
                static_cast<unsigned long long>(state.ok.load()),
                static_cast<unsigned long long>(state.cache_hits.load()),
                static_cast<unsigned long long>(state.disk_hits.load()),
                static_cast<unsigned long long>(state.shed.load()),
                static_cast<unsigned long long>(state.errors.load()),
                static_cast<unsigned long long>(
                    state.transport_failures.load()));
    std::printf("  byte-identity: %llu comparisons, %llu mismatches\n",
                static_cast<unsigned long long>(state.compared.load()),
                static_cast<unsigned long long>(state.mismatches.load()));
    if (retry.retries > 0 || retried > 0) {
      std::printf("  retries %llu, reconnects %llu, exhausted %llu\n",
                  static_cast<unsigned long long>(retried),
                  static_cast<unsigned long long>(reconnects),
                  static_cast<unsigned long long>(exhausted));
      if (exhausted > 0 && !exhausted_error.empty()) {
        std::printf("  last exhausted call: %s\n", exhausted_error.c_str());
      }
    }
    if (state.validate) {
      std::printf("  validated %llu schedules, %llu invalid\n",
                  static_cast<unsigned long long>(state.validated.load()),
                  static_cast<unsigned long long>(state.invalid.load()));
    }
    std::printf("  latency_us: n=%llu min=%.1f p50=%.1f p90=%.1f p99=%.1f "
                "max=%.1f\n",
                static_cast<unsigned long long>(latency.count), latency.min,
                latency.p50, latency.p90, latency.p99, latency.max);
  }

  if (const std::string path = opts.get("manifest", ""); !path.empty()) {
    obs::Manifest manifest = obs::current_manifest();
    manifest.threads = connections;
    manifest.extra.emplace_back("command", "loadgen");
    manifest.extra.emplace_back("mode", qps > 0.0 ? "paced" : "closed");
    manifest.extra.emplace_back("connections", std::to_string(connections));
    manifest.extra.emplace_back("targets", std::to_string(endpoints.size()));
    manifest.extra.emplace_back("zipf_s", std::to_string(zipf_s));
    manifest.extra.emplace_back("family", family);
    manifest.extra.emplace_back("algo", opts.get("algo", "bkpq"));
    manifest.extra.emplace_back("timeout_ms",
                                std::to_string(retry.timeout_ms));
    manifest.extra.emplace_back("retry_budget",
                                std::to_string(retry.retries));
    manifest.extra.emplace_back("achieved_qps",
                                std::to_string(achieved_qps));
    manifest.extra.emplace_back("disk_hits",
                                std::to_string(state.disk_hits.load()));
    manifest.extra.emplace_back("retries", std::to_string(retried));
    manifest.extra.emplace_back("reconnects", std::to_string(reconnects));
    manifest.extra.emplace_back("exhausted", std::to_string(exhausted));
    if (std::ofstream out(path); out) {
      io::write_json_manifest(out, manifest);
    }
  }

  bool failed = state.errors.load() > 0 ||
                state.transport_failures.load() > 0 ||
                state.mismatches.load() > 0 || state.invalid.load() > 0;
  if (opts.flag("expect-no-shed") && state.shed.load() > 0) {
    std::fprintf(stderr, "qbss-loadgen: expected no shed responses, got "
                         "%llu\n",
                 static_cast<unsigned long long>(state.shed.load()));
    failed = true;
  }
  if (opts.flag("expect-shed") && state.shed.load() == 0) {
    std::fprintf(stderr,
                 "qbss-loadgen: expected shed responses, got none\n");
    failed = true;
  }
  if (opts.flag("expect-cache-hits") && state.cache_hits.load() == 0) {
    std::fprintf(stderr,
                 "qbss-loadgen: expected cache hits, got none\n");
    failed = true;
  }
  if (opts.flag("expect-disk-hits")) {
    // The flag's value is optional (`--expect-disk-hits` alone means 1),
    // so parse it by hand instead of through Options::number, which
    // rejects an empty value.
    const std::string text = opts.get("expect-disk-hits", "");
    std::uint64_t want = 1;
    if (!text.empty()) {
      want = std::strtoull(text.c_str(), nullptr, 10);
      if (want == 0) want = 1;
    }
    if (state.disk_hits.load() < want) {
      std::fprintf(stderr,
                   "qbss-loadgen: expected >= %llu disk hit(s) (is "
                   "--cache-dir set and warm?), got %llu\n",
                   static_cast<unsigned long long>(want),
                   static_cast<unsigned long long>(state.disk_hits.load()));
      failed = true;
    }
  }
  if (opts.flag("expect-retries") && retried == 0) {
    std::fprintf(stderr,
                 "qbss-loadgen: expected retries (is the fault plan "
                 "active?), got none\n");
    failed = true;
  }
  if (const double expect_qps = opts.number("expect-qps", 0.0);
      expect_qps > 0.0 && achieved_qps < expect_qps) {
    std::fprintf(stderr,
                 "qbss-loadgen: expected >= %.1f req/s, achieved %.1f\n",
                 expect_qps, achieved_qps);
    failed = true;
  }
  obs::flush_logs();
  return failed ? 1 : 0;
}
