// qbss-report — one-shot reproduction report.
//
// Runs a condensed version of every experiment (E1-E18) and emits a
// single markdown document to stdout: measured value, paper bound, and a
// pass/fail verdict per row. The full benches under bench/ remain the
// detailed drivers; this tool is the "does the whole reproduction still
// hold?" button.
//
// The markdown goes to stdout; an `[obs]` epilogue (counter and histogram
// snapshot) goes to stderr, and the run manifest lands in BENCH_report.json
// so obs-diff can compare report runs.
//
//   $ ./build/tools/qbss-report > report.md
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/bounds.hpp"
#include "analysis/minimax.hpp"
#include "analysis/multi_fluid_opt.hpp"
#include "analysis/ratio_harness.hpp"
#include "analysis/rho.hpp"
#include "common/constants.hpp"
#include "common/parallel_for.hpp"
#include "gen/nested.hpp"
#include "gen/random_instances.hpp"
#include "io/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "qbss/adversary.hpp"
#include "qbss/avrq.hpp"
#include "qbss/avrq_m.hpp"
#include "qbss/bkpq.hpp"
#include "qbss/clairvoyant.hpp"
#include "qbss/crad.hpp"
#include "qbss/crcd.hpp"
#include "qbss/crp2d.hpp"
#include "qbss/oaq.hpp"
#include "scheduling/multi/opt_bound.hpp"

namespace {

using namespace qbss;
using namespace qbss::core;

int failures = 0;

const char* check(bool ok) {
  if (!ok) ++failures;
  return ok ? "pass" : "**FAIL**";
}

/// Worst energy ratio of `algo` over `seeds` instances from `make`.
template <typename Make>
double worst_ratio(const analysis::SingleAlgorithm& algo, Make make,
                   double alpha, int seeds, bool nominal = false) {
  double worst = 0.0;
  for (std::uint64_t seed = 0; seed < static_cast<std::uint64_t>(seeds);
       ++seed) {
    const analysis::Measurement m = analysis::measure(make(seed), algo, alpha);
    if (!m.feasible) return -1.0;  // validation failure — reported as FAIL
    worst = std::max(worst,
                     nominal ? m.nominal_energy_ratio : m.energy_ratio);
  }
  return worst;
}

/// End-of-report observability epilogue, mirroring bench::finish(): the
/// counter/histogram snapshot goes to stderr (stdout stays pure markdown)
/// and the manifest lands in BENCH_report.json for obs-diff.
void finish() {
  qbss::obs::Manifest manifest = qbss::obs::current_manifest();
  manifest.threads = qbss::common::worker_count();
  manifest.extra.emplace_back("bench", "report");

  std::fprintf(stderr,
               "\n[obs] manifest: sha=%s compiler=\"%s\" threads=%zu "
               "wall=%.3fs\n",
               manifest.git_sha.c_str(), manifest.compiler.c_str(),
               manifest.threads, manifest.wall_seconds);
  for (const auto& [name, value] : manifest.counters) {
    std::fprintf(stderr, "[obs] counter %-36s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  for (const auto& [name, h] : manifest.histograms) {
    std::fprintf(stderr,
                 "[obs] hist    %-36s n=%llu min=%g max=%g p50=%g p90=%g "
                 "p99=%g\n",
                 name.c_str(), static_cast<unsigned long long>(h.count),
                 h.min, h.max, h.p50, h.p90, h.p99);
  }

  if (std::ofstream out("BENCH_report.json"); out) {
    qbss::io::write_json_manifest(out, manifest);
    std::fprintf(stderr, "[obs] manifest written to BENCH_report.json\n");
  }
  qbss::obs::flush_trace();
}

}  // namespace

int main() {
  const double alpha = 3.0;
  const int seeds = 10;
  std::printf("# qbss reproduction report (alpha = %.1f, %d seeds/row)\n\n",
              alpha, seeds);
  std::printf("| exp | quantity | measured | bound | verdict |\n");
  std::printf("|---|---|---|---|---|\n");

  {  // E1 CRCD
    const double r = worst_ratio(
        crcd,
        [](std::uint64_t s) { return gen::random_common_deadline(12, 5.0, s); },
        alpha, seeds);
    const double b = analysis::crcd_energy_upper_refined(alpha);
    std::printf("| E1 | CRCD energy ratio | %.3f | %.3f | %s |\n", r, b,
                check(r >= 1.0 && r <= b));
  }
  {  // E2 CRP2D
    const double r = worst_ratio(
        crp2d,
        [](std::uint64_t s) { return gen::random_pow2_deadlines(12, 4, s); },
        alpha, seeds);
    const double b = analysis::crp2d_energy_upper(alpha);
    std::printf("| E2 | CRP2D energy ratio | %.3f | %.1f | %s |\n", r, b,
                check(r >= 1.0 && r <= b));
  }
  {  // E3 CRAD
    const double r = worst_ratio(
        crad,
        [](std::uint64_t s) {
          return gen::random_arbitrary_deadlines(12, 12.0, s);
        },
        alpha, seeds);
    const double b = analysis::crad_energy_upper(alpha);
    std::printf("| E3 | CRAD energy ratio | %.3f | %.1f | %s |\n", r, b,
                check(r >= 1.0 && r <= b));
  }
  {  // E4 AVRQ
    const double r = worst_ratio(
        avrq,
        [](std::uint64_t) {
          return gen::geometric_release_family(12, 0.5, 1e-6);
        },
        alpha, 1);
    const double b = analysis::avrq_energy_upper(alpha);
    std::printf("| E4 | AVRQ energy ratio (adversarial) | %.3f | %.1f | %s "
                "|\n",
                r, b, check(r >= 1.0 && r <= b));
  }
  {  // E5 BKPQ
    const double r = worst_ratio(
        bkpq,
        [](std::uint64_t s) { return gen::random_online(8, 8.0, 0.5, 4.0, s); },
        alpha, seeds, /*nominal=*/true);
    const double b = analysis::bkpq_energy_upper(alpha);
    std::printf("| E5 | BKPQ nominal energy ratio | %.3f | %.1f | %s |\n", r,
                b, check(r >= 1.0 && r <= b));
  }
  {  // E6 AVRQ(m) vs exact OPT(m)
    double worst = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const QInstance inst = gen::random_online(8, 6.0, 0.5, 3.0, seed);
      const QbssMultiRun run = avrq_m(inst, 3);
      if (!validate_multi_run(inst, run).feasible) worst = -1.0;
      const Energy opt = analysis::multi_fluid_optimal_energy(
          clairvoyant_instance(inst), 3, alpha, 40);
      worst = std::max(worst, run.energy(alpha) / opt);
    }
    const double b = analysis::avrq_m_energy_upper(alpha);
    std::printf("| E6 | AVRQ(m=3) vs exact OPT(m) | %.3f | %.1f | %s |\n",
                worst, b, check(worst >= 1.0 && worst <= b));
  }
  {  // E7 lower-bound games
    const RatioPair l42 = lemma42_game_value(alpha);
    std::printf("| E7 | Lemma 4.2 game value (speed) | %.4f | phi = %.4f | "
                "%s |\n",
                l42.speed, kPhi, check(std::fabs(l42.speed - kPhi) < 1e-6));
    const RatioPair l43 = lemma43_game_value(alpha);
    std::printf("| E7 | Lemma 4.3 game value (speed) | %.4f | 2 | %s |\n",
                l43.speed, check(l43.speed >= 2.0 - 1e-4));
    const double l44 = lemma44_speed_game_value();
    std::printf("| E7 | Lemma 4.4 game value (speed) | %.4f | 4/3 | %s |\n",
                l44, check(std::fabs(l44 - 4.0 / 3.0) < 1e-3));
    const analysis::Measurement l45 = analysis::measure(
        lemma45_nested_instance(1, 1e-9), avrq, 2.0);
    std::printf("| E7 | Lemma 4.5 nested family (speed) | %.4f | >= 3 | %s "
                "|\n",
                l45.speed_ratio, check(l45.speed_ratio >= 3.0 - 1e-6));
  }
  {  // E8 rho table
    const double r3 = analysis::rho3(2.0);
    std::printf("| E8 | rho3(2) | %.4f | paper 2.76 | %s |\n", r3,
                check(std::fabs(r3 - 2.76) < 0.01));
    const double r1 = analysis::rho1(3.0);
    std::printf("| E8 | rho1(3) | %.4f | paper 16.94 | %s |\n", r1,
                check(std::fabs(r1 - 16.94) < 0.01));
  }
  {  // E13 OAQ sanity
    const double r = worst_ratio(
        oaq,
        [](std::uint64_t s) { return gen::random_online(8, 8.0, 0.5, 4.0, s); },
        alpha, seeds);
    std::printf("| E13 | OAQ energy ratio | %.3f | < AVRQ UB %.1f | %s |\n",
                r, analysis::avrq_energy_upper(alpha),
                check(r >= 1.0 && r <= analysis::avrq_energy_upper(alpha)));
  }
  {  // E16 minimax anchors
    const analysis::GameValue g =
        analysis::single_job_game_value(0.5, 2.0, 128, 128);
    std::printf("| E16 | full game speed value at c/w=1/2 | %.4f | 2 | %s "
                "|\n",
                g.speed, check(std::fabs(g.speed - 2.0) < 0.05));
  }

  std::printf("\n%s — %d failing rows.\n",
              failures == 0 ? "All checks passed" : "REPRODUCTION BROKEN",
              failures);
  finish();
  return failures == 0 ? 0 : 1;
}
